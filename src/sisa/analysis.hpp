/**
 * @file
 * Static SISA program verification (hazard and dataflow analysis).
 * The paper's programs compile into streams of set instructions whose
 * operands (SetIds) form an explicit dataflow; this analyzer decodes
 * such a stream -- a serial program of encoded words, a BatchRequest,
 * or a hand-built Program -- WITHOUT executing it, builds the SetId
 * def/use dependency graph, and emits severity-graded diagnostics
 * with op index, encoded word, and a machine-readable kind.
 *
 * Detected classes:
 *  - intra-batch RAW/WAR/WAW hazards: two parallel lanes touching the
 *    same destination, or a lane reading a SetId another lane in the
 *    same dispatch group writes;
 *  - use-before-definition and use-after-free/release (a DeleteSet'd
 *    id consumed later, double destroys, dead store operands);
 *  - destination-aliases-operand and duplicate destinations;
 *  - out-of-range vault and universe references;
 *  - metadata-only-op misuse (encoded operand flags claiming operands
 *    the op never touches);
 *  - redundant duplicate scalar ops wasting dispatch lanes.
 *
 * The DependencyGraph built over the same def/use edges is exposed as
 * a reusable artifact (topological levels = maximal independent issue
 * sets) for the async dependency-aware dispatch work: an op's level
 * is the earliest wave in which every operand it consumes is ready.
 *
 * Integration points: ScuConfig.analyze verifies every dispatchBatch
 * statically before execution (scu.analysis_* counters; strict mode
 * hard-fails on ERROR diagnostics); `sisa_run ... analyze=trace`
 * replays a recorded instruction trace through the analyzer offline.
 * The analyzer never charges modeled cycles -- it is host-side
 * tooling, and with analyze off the dispatch path is untouched.
 */

#ifndef SISA_SISA_ANALYSIS_HPP
#define SISA_SISA_ANALYSIS_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sisa/batch.hpp"
#include "sisa/encoding.hpp"
#include "sisa/isa.hpp"
#include "sisa/set_store.hpp"

namespace sisa::isa::analysis {

/** Machine-readable diagnostic classes. */
enum class DiagKind : std::uint8_t
{
    /** Word does not decode as a SISA instruction. */
    UnknownInstruction,
    /** Operand id never defined (and not live in the store). */
    UseBeforeDef,
    /** Operand id consumed after a DeleteSet released it. */
    UseAfterFree,
    /** Parallel lane reads an id an earlier lane in the group writes. */
    RawHazard,
    /** Parallel lane writes an id an earlier lane in the group reads. */
    WarHazard,
    /** Two parallel lanes write (or release) the same id. */
    WawHazard,
    /** Two ops in one group materialize into the same destination. */
    DuplicateDestination,
    /** A materializing op's destination aliases one of its operands. */
    DestAliasesOperand,
    /** An operand resolves to a vault outside the configured range. */
    VaultOutOfRange,
    /** An element immediate lies outside the store universe. */
    UniverseOutOfRange,
    /** Encoded xd/xs1/xs2 flags claim operands the op never touches. */
    MetadataOnlyMisuse,
    /** Identical scalar op issued twice in one group (wasted lane). */
    RedundantOp,
};

/** Number of diagnostic kinds (array sizing / iteration). */
inline constexpr std::size_t num_diag_kinds = 12;

enum class Severity : std::uint8_t { Info, Warning, Error };

/** Fixed severity grade of each diagnostic kind. */
Severity diagSeverity(DiagKind kind);

/** Stable kebab-case identifier (JSON reports, CLI output). */
std::string_view diagKindName(DiagKind kind);

std::string_view severityName(Severity severity);

/** One finding, anchored to an op index in the analyzed program. */
struct Diagnostic
{
    DiagKind kind = DiagKind::UnknownInstruction;
    Severity severity = Severity::Error;
    std::uint32_t op = 0;   ///< Index into the analyzed program.
    std::uint32_t word = 0; ///< Encoded instruction word of that op.
    SetId id = invalid_set; ///< Primary set id involved (or invalid).
    /** Other op of a pairwise hazard; UINT32_MAX when standalone. */
    std::uint32_t otherOp = UINT32_MAX;
    std::string message;
};

/** Aggregated outcome of one analysis. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    std::uint64_t instructions = 0; ///< Ops analyzed.

    std::uint32_t errors = 0;
    std::uint32_t warnings = 0;
    std::uint32_t infos = 0;

    bool hasErrors() const { return errors > 0; }
    bool clean() const { return diagnostics.empty(); }

    /** Findings of @p kind (test pins). */
    std::uint32_t count(DiagKind kind) const;

    /** Human-readable multi-line report. */
    std::string toString() const;

    /**
     * Machine-readable JSON report (schema
     * "sisa-analysis-report-v1"; validated by
     * tools/check_bench_json.py --analysis).
     */
    std::string toJson() const;
};

/** Strict-mode rejection: the verifier found ERROR diagnostics. */
class AnalysisError : public std::runtime_error
{
  public:
    explicit AnalysisError(Report report);
    const Report &report() const { return report_; }

  private:
    Report report_;
};

/**
 * One operation of an analyzable program, with its def/use sets made
 * explicit: `dest` is the id the op defines (materializing ops) or
 * mutates in place (insert/remove/convert), `a`/`b` are the ids it
 * reads, and `group` marks parallel-dispatch membership -- ops
 * sharing a group id issue concurrently with NO ordering among them
 * (the dispatchBatch contract), so any def/use overlap inside a
 * group is a hazard rather than a dependency.
 */
struct ProgramOp
{
    SisaOp op = SisaOp::IntersectAuto;
    SetId dest = invalid_set; ///< Defined / mutated id (or invalid).
    SetId a = invalid_set;    ///< First source (or invalid).
    SetId b = invalid_set;    ///< Second source (or invalid).
    Element element = 0;      ///< Immediate for insert/remove/member.
    bool hasElement = false;
    std::uint32_t group = 0; ///< Parallel group id.
    std::uint32_t word = 0;  ///< Encoded form (diagnostic anchor).
    bool decoded = true;     ///< False: word failed to decode.

    /** Does the op write `dest` in place (reading it first)? */
    bool mutatesInPlace() const;
    /** Does the op release `a` (DeleteSet)? */
    bool releases() const { return op == SisaOp::DeleteSet; }
};

/**
 * An analyzable SISA program: a sequence of ProgramOps in issue
 * order, partitioned into serial steps and parallel groups. Build
 * one from a recorded instruction stream (fromWords), from a batch
 * about to dispatch (fromBatch), or by hand for seeded-hazard tests
 * and for the async-dispatch planner.
 */
class Program
{
  public:
    Program() = default;

    /**
     * Decode an encoded instruction stream (InstructionTrace::words)
     * into a serial register-level program: rd/rs1/rs2 register
     * numbers stand in for set ids, exactly as the trace's
     * round-robin register allocator folded them. Register reuse is
     * renaming, not a hazard, so liveness checks that need real ids
     * (use-before-def against a store) are skipped downstream
     * (registerLevel()). Undecodable words become placeholder ops
     * that analyze() reports as UnknownInstruction.
     */
    static Program fromWords(std::span<const std::uint32_t> words);

    /**
     * Lift a BatchRequest into one parallel group. Destinations stay
     * invalid -- dispatchBatch allocates result ids at adoption, so a
     * batch op defines nothing the analyzer can name -- which makes
     * operand liveness, range, and duplicate-scalar-op checks the
     * active diagnostics, mirroring exactly what the batch contract
     * in sisa/batch.hpp assumes.
     */
    static Program fromBatch(const BatchRequest &batch);

    // --- Hand-building (tests, planners) ---------------------------------

    /** Append one op as its own serial step. */
    void serial(ProgramOp op);

    /**
     * Open a parallel group: ops appended through add() share it
     * until endGroup(). Groups model one dispatchBatch.
     */
    void beginGroup();
    void add(ProgramOp op);
    void endGroup();

    const std::vector<ProgramOp> &ops() const { return ops_; }
    std::size_t size() const { return ops_.size(); }
    bool registerLevel() const { return registerLevel_; }

  private:
    std::vector<ProgramOp> ops_;
    std::uint32_t nextGroup_ = 0;
    bool inGroup_ = false;
    bool registerLevel_ = false;
};

/**
 * Store/hardware context the analyzer may consult. All fields are
 * optional: without a store, liveness and universe checks are
 * skipped; without a vault count, vault-range checks are skipped.
 */
struct AnalysisContext
{
    /** Liveness + universe ground truth (nullptr = skip). */
    const SetStore *store = nullptr;
    /** Configured vault count (0 = skip vault checks). */
    std::uint32_t vaults = 0;
    /**
     * Operand id -> vault resolver (placement policy + overlay).
     * Null with vaults > 0 falls back to id % vaults.
     */
    std::function<std::uint32_t(SetId)> vaultOf;

    std::uint32_t resolveVault(SetId id) const;
};

/** Run every check over @p program. Pure; never touches payloads. */
Report analyze(const Program &program, const AnalysisContext &ctx = {});

/**
 * The SetId def/use dependency DAG of a program, the reusable
 * artifact async dependency-aware dispatch consumes. Nodes are op
 * indices; an edge i -> j (i earlier) exists when j must wait for i:
 * RAW (i defines an id j reads), WAR (j overwrites an id i reads),
 * or WAW (both write the same id; releases count as writes). Ops in
 * the same parallel group never depend on each other (hazards there
 * are analyze()'s findings, not ordering edges).
 *
 * levelOf(op) is the op's topological depth -- the earliest issue
 * wave in which all its inputs are ready -- and levels() groups op
 * indices by that depth: every level is an independent op set whose
 * members may issue concurrently once the previous level retired.
 */
class DependencyGraph
{
  public:
    explicit DependencyGraph(const Program &program);

    std::size_t size() const { return succ_.size(); }
    const std::vector<std::uint32_t> &
    successors(std::uint32_t op) const
    {
        return succ_[op];
    }
    const std::vector<std::uint32_t> &
    predecessors(std::uint32_t op) const
    {
        return pred_[op];
    }
    std::uint32_t levelOf(std::uint32_t op) const { return level_[op]; }
    /** Number of issue waves (0 for an empty program). */
    std::uint32_t depth() const;
    /** Per-level independent op sets, in issue order inside a level. */
    const std::vector<std::vector<std::uint32_t>> &levels() const
    {
        return levels_;
    }
    std::uint64_t edgeCount() const { return edges_; }

  private:
    std::vector<std::vector<std::uint32_t>> succ_;
    std::vector<std::vector<std::uint32_t>> pred_;
    std::vector<std::uint32_t> level_;
    std::vector<std::vector<std::uint32_t>> levels_;
    std::uint64_t edges_ = 0;
};

/**
 * Cross-batch dependency scoreboard for the SCU's async dispatch
 * window. Where DependencyGraph rebuilds the full def/use DAG of one
 * program, the window is INCREMENTAL: it carries the unretired defs
 * (SetId -> modeled completion time) and last modeled reads of every
 * in-flight dispatch, and each new batch -- lifted via
 * Program::fromBatch -- is joined against that state in O(ops)
 * instead of re-running the O(window) graph construction per
 * dispatch. Times are virtual cycles relative to the window's
 * opening (Scu::dispatchAsync defines the clock).
 *
 *  - joinBatch() answers the RAW question for a whole lifted batch:
 *    the earliest start of each op given its operands' pending defs.
 *  - defTime()/lastRead() answer the same for serial ops: readers
 *    stall to defTime, writers to max(defTime, lastRead) (WAR).
 *  - forget() drops an id on destroy, so a recycled id carries no
 *    stale edges (WAW discipline).
 *
 * Not thread-safe; owned by the dispatching thread like the window
 * itself.
 */
class DependencyWindow
{
  public:
    /**
     * Earliest virtual start time of each op of @p program given the
     * pending defs: max(@p issue, defTime(op.a), defTime(op.b)).
     * Pure -- the caller records the resulting reads/defs once lane
     * assignment fixes the ops' actual end times.
     */
    std::vector<std::uint64_t>
    joinBatch(const Program &program, std::uint64_t issue) const;

    /** Record that @p id's pending def completes at @p completion. */
    void noteDef(SetId id, std::uint64_t completion);

    /** Record a modeled read of @p id finishing at @p t. */
    void noteRead(SetId id, std::uint64_t t);

    /** Pending-def completion of @p id (0 = no pending def). */
    std::uint64_t defTime(SetId id) const;

    /** Latest modeled read of @p id (0 = never read in-window). */
    std::uint64_t lastRead(SetId id) const;

    /** Drop all state for @p id (destroyed / recycled). */
    void forget(SetId id);

    /** Reset to an empty window (drain). */
    void clear();

    std::size_t pendingDefs() const { return defs_.size(); }
    bool empty() const { return defs_.empty() && reads_.empty(); }

  private:
    std::unordered_map<SetId, std::uint64_t> defs_;
    std::unordered_map<SetId, std::uint64_t> reads_;
};

} // namespace sisa::isa::analysis

#endif // SISA_SISA_ANALYSIS_HPP
