#include "sisa/faults.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "support/logging.hpp"

namespace sisa::isa {

namespace {

// The SplitMix64 finalizer (support/rng.hpp), usable as a pure mixing
// function: every fault decision hashes its coordinates through it so
// decisions are independent of query order and worker count.
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// Per-channel salts keep e.g. drop and stall decisions at identical
// coordinates uncorrelated.
constexpr std::uint64_t channel_corrupt = 0x636f727275707431ULL;
constexpr std::uint64_t channel_drop = 0x64726f7020787631ULL;
constexpr std::uint64_t channel_stall = 0x7374616c6c206c31ULL;

} // namespace

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config))
{
    config_.maxRetries = std::max<std::uint32_t>(config_.maxRetries, 1);
    const bool corrupts =
        config_.corruptRate > 0.0 || !config_.corruptAt.empty();
    sisa_assert(!corrupts || config_.verifyChecksums,
                "result corruption configured with checksum "
                "verification disabled: faults would go undetected");
}

double
FaultInjector::uniform(std::uint64_t channel, std::uint64_t c0,
                       std::uint64_t c1, std::uint64_t c2) const
{
    std::uint64_t h = mix64(config_.seed ^ channel);
    h = mix64(h ^ c0);
    h = mix64(h ^ c1);
    h = mix64(h ^ c2);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool
FaultInjector::corruptsResult(std::uint64_t dispatch, std::uint32_t op,
                              std::uint32_t attempt) const
{
    for (const CorruptionPoint &point : config_.corruptAt) {
        if (point.dispatch == dispatch && point.op == op)
            return attempt < point.attempts;
    }
    if (config_.corruptRate <= 0.0)
        return false;
    return uniform(channel_corrupt, dispatch, op, attempt) <
           config_.corruptRate;
}

bool
FaultInjector::dropsTransfer(std::uint64_t dispatch, std::uint32_t vault,
                             SetId operand, std::uint32_t attempt) const
{
    if (config_.dropRate <= 0.0)
        return false;
    const std::uint64_t site =
        (static_cast<std::uint64_t>(vault) << 32) | operand;
    return uniform(channel_drop, dispatch, site, attempt) <
           config_.dropRate;
}

mem::Cycles
FaultInjector::stallCycles(std::uint64_t dispatch,
                           std::uint32_t op) const
{
    if (config_.stallRate <= 0.0 || config_.stallCycles == 0)
        return 0;
    return uniform(channel_stall, dispatch, op, 0) < config_.stallRate
               ? config_.stallCycles
               : 0;
}

void
FaultInjector::failuresAt(std::uint64_t dispatch,
                          std::vector<std::uint32_t> &out) const
{
    for (const VaultFailurePoint &point : config_.vaultFailures) {
        if (point.dispatch == dispatch)
            out.push_back(point.vault);
    }
    // Deterministic quarantine order when several vaults die at once.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

namespace {

template <typename T>
bool
parseNumber(std::string_view text, T &out)
{
    const char *end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, out);
    return ec == std::errc{} && ptr == end;
}

bool
parseRate(std::string_view text, double &out)
{
    // from_chars<double> is still missing on some libstdc++ targets;
    // rates are short, so strtod on a bounded copy is fine.
    const std::string copy(text);
    char *end = nullptr;
    out = std::strtod(copy.c_str(), &end);
    return end == copy.c_str() + copy.size() && !copy.empty() &&
           out >= 0.0 && out <= 1.0;
}

} // namespace

std::optional<FaultConfig>
parseFaultSpec(std::string_view spec, std::string *error)
{
    const auto fail = [&](const std::string &message)
        -> std::optional<FaultConfig> {
        if (error)
            *error = message;
        return std::nullopt;
    };
    if (spec.empty())
        return fail("empty fault spec");

    FaultConfig config;
    config.enabled = true;
    while (!spec.empty()) {
        const std::size_t comma = spec.find(',');
        std::string_view item = spec.substr(0, comma);
        spec = comma == std::string_view::npos
                   ? std::string_view{}
                   : spec.substr(comma + 1);
        const std::size_t eq = item.find('=');
        if (eq == std::string_view::npos || eq == 0)
            return fail("fault spec item '" + std::string(item) +
                        "' is not key=value");
        const std::string_view key = item.substr(0, eq);
        const std::string_view value = item.substr(eq + 1);
        bool ok = true;
        if (key == "seed") {
            ok = parseNumber(value, config.seed);
        } else if (key == "corrupt") {
            ok = parseRate(value, config.corruptRate);
        } else if (key == "stall") {
            ok = parseRate(value, config.stallRate);
        } else if (key == "stall-cycles") {
            ok = parseNumber(value, config.stallCycles);
        } else if (key == "drop") {
            ok = parseRate(value, config.dropRate);
        } else if (key == "retries") {
            ok = parseNumber(value, config.maxRetries) &&
                 config.maxRetries > 0;
        } else if (key == "backoff") {
            ok = parseNumber(value, config.retryBackoffBase);
        } else if (key == "timeout") {
            ok = parseNumber(value, config.heartbeatTimeout);
        } else if (key == "verify") {
            std::uint32_t flag = 0;
            ok = parseNumber(value, flag) && flag <= 1;
            config.verifyChecksums = flag != 0;
        } else if (key == "fail") {
            VaultFailurePoint point;
            const std::size_t at = value.find('@');
            ok = at != std::string_view::npos &&
                 parseNumber(value.substr(0, at), point.dispatch) &&
                 parseNumber(value.substr(at + 1), point.vault);
            if (ok)
                config.vaultFailures.push_back(point);
        } else if (key == "corrupt-at") {
            CorruptionPoint point;
            const std::size_t c1 = value.find(':');
            ok = c1 != std::string_view::npos &&
                 parseNumber(value.substr(0, c1), point.dispatch);
            if (ok) {
                const std::string_view rest = value.substr(c1 + 1);
                const std::size_t c2 = rest.find(':');
                if (c2 == std::string_view::npos) {
                    ok = parseNumber(rest, point.op);
                } else {
                    ok = parseNumber(rest.substr(0, c2), point.op) &&
                         parseNumber(rest.substr(c2 + 1),
                                     point.attempts);
                }
            }
            if (ok)
                config.corruptAt.push_back(point);
        } else {
            return fail("unknown fault spec key '" + std::string(key) +
                        "'");
        }
        if (!ok)
            return fail("bad value in fault spec item '" +
                        std::string(item) + "'");
    }
    if ((config.corruptRate > 0.0 || !config.corruptAt.empty()) &&
        !config.verifyChecksums) {
        return fail("corrupt faults require verify=1");
    }
    return config;
}

std::uint64_t
fnvChecksum32(const std::uint32_t *data, std::size_t n)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::size_t i = 0; i < n; ++i) {
        hash ^= data[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::uint64_t
fnvChecksum64(const std::uint64_t *data, std::size_t n)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::size_t i = 0; i < n; ++i) {
        hash ^= data[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

} // namespace sisa::isa
