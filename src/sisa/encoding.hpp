/**
 * @file
 * RISC-V-compliant binary encoding of SISA instructions (Section
 * 6.3.5, Figure 5). SISA uses the RISC-V custom opcode space: bits
 * [6..0] carry the custom opcode 0x16, bits [31..25] (funct7) carry
 * the SISA operation identifier (up to 128 operations), rs1/rs2/rd
 * name the registers holding input/output set ids, and the xd/xs1/xs2
 * bits flag which register operands the instruction uses.
 */

#ifndef SISA_SISA_ENCODING_HPP
#define SISA_SISA_ENCODING_HPP

#include <cstdint>
#include <optional>

#include "sisa/isa.hpp"

namespace sisa::isa {

/** The custom instruction opcode in bits [6..0] (Section 6.3.5). */
inline constexpr std::uint32_t sisa_opcode = 0x16;

/** Encode @p inst into its 32-bit RISC-V representation. */
std::uint32_t encode(const SisaInst &inst);

/**
 * Decode a 32-bit word. Returns std::nullopt when the word is not a
 * SISA instruction (wrong opcode) or carries an undefined funct7.
 */
std::optional<SisaInst> decode(std::uint32_t word);

/** True iff the word carries the SISA custom opcode. */
constexpr bool
isSisaWord(std::uint32_t word)
{
    return (word & 0x7f) == sisa_opcode;
}

} // namespace sisa::isa

#endif // SISA_SISA_ENCODING_HPP
