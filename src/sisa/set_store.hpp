/**
 * @file
 * Storage and metadata for SISA sets ("Life Cycle of a Set" and "Set
 * Metadata", Section 8.4). Sets live in (simulated) memory under
 * logical set ids; the Set Metadata (SM) structure maps each id to
 * its representation type, cardinality, and location, and is what the
 * SCU consults to pick instruction variants. The store is the
 * functional ground truth of the simulation; timing for SM accesses
 * is charged by the SCU through the SMB model.
 */

#ifndef SISA_SISA_SET_STORE_HPP
#define SISA_SISA_SET_STORE_HPP

#include <cstdint>
#include <variant>
#include <vector>

#include "mem/address_space.hpp"
#include "sets/dense_bitset.hpp"
#include "sets/representation.hpp"
#include "sets/sorted_array.hpp"
#include "sisa/isa.hpp"

namespace sisa::isa {

using sets::DenseBitset;
using sets::Element;
using sets::SetRepr;
using sets::SortedArraySet;

/** One SM entry (Section 8.4: representation, size, location). */
struct SetMetadata
{
    SetRepr repr = SetRepr::SparseArray;
    std::uint64_t cardinality = 0;
    mem::Addr location = 0;
    bool live = false;
};

/** Owns every SISA set and its metadata. */
class SetStore
{
  public:
    /** @param universe Universe size n (DB width in bits). */
    explicit SetStore(Element universe);

    Element universe() const { return universe_; }

    /**
     * Memory footprint of one dense bitvector over this universe:
     * ceil(universe / 8) bytes. The single source of truth for DB
     * allocation sizes (previously three call sites disagreed about
     * rounding).
     */
    std::uint64_t denseBytes() const;

    /**
     * Memory footprint of @p id's payload as it moves between vaults
     * (interconnect transfers, migrations): 4 B per SA element,
     * denseBytes() for a DB. The single source of truth for operand
     * footprints in the cross-vault cost model.
     */
    std::uint64_t payloadBytes(SetId id) const;

    /** Create a set from sorted unique elements in @p repr. */
    SetId createFromSorted(std::vector<Element> elems, SetRepr repr);

    /** Create an empty set in @p repr. */
    SetId createEmpty(SetRepr repr);

    /** Create the full universe set as a DB (e.g., P = V in BK). */
    SetId createFull();

    /** Duplicate @p id (same representation). */
    SetId clone(SetId id);

    /** Destroy @p id; its slot is recycled. */
    void destroy(SetId id);

    /** Convert @p id to @p repr in place (no-op if already there). */
    void convert(SetId id, SetRepr repr);

    bool live(SetId id) const;
    const SetMetadata &metadata(SetId id) const;

    bool isDense(SetId id) const;
    std::uint64_t cardinality(SetId id) const;

    /** Access as SA; the set must be in SA representation. */
    const SortedArraySet &sa(SetId id) const;

    /** Access as DB; the set must be in DB representation. */
    const DenseBitset &db(SetId id) const;

    SortedArraySet &mutableSa(SetId id);
    DenseBitset &mutableDb(SetId id);

    /** Adopt @p set as a new stored set. */
    SetId adopt(SortedArraySet set);
    SetId adopt(DenseBitset set);

    /** O(1) membership against either representation. */
    bool member(SetId id, Element x) const;

    /** Insert @p x (A cup {x}). */
    void insert(SetId id, Element x);

    /** Remove @p x (A setminus {x}). */
    void remove(SetId id, Element x);

    /** Number of live sets. */
    std::uint64_t liveCount() const { return liveCount_; }

    /** Total storage of live sets in bits (Section 6.1 accounting). */
    std::uint64_t storageBits() const;

    /** Synthetic address of the SM entry for @p id (SMB indexing). */
    mem::Addr
    metadataAddr(SetId id) const
    {
        return sm_base_ + static_cast<mem::Addr>(id) * sm_entry_bytes;
    }

    /** Collect elements of @p id in sorted order. */
    std::vector<Element> elementsOf(SetId id) const;

    /**
     * FNV-1a checksum of @p id's payload words -- the per-set
     * integrity code of the fault model (sisa/faults.hpp): the SCU
     * compares it against the checksum of data arriving over the
     * interconnect or out of a vault to detect corruption. Cached
     * lazily; every payload mutation invalidates the cache, so the
     * checksum always reflects the current payload. Host-side only:
     * the modeled verification cycles are charged by the SCU.
     */
    std::uint64_t payloadChecksum(SetId id) const;

    /** Invoke @p fn(id) on every live id, ascending (deterministic). */
    template <typename Fn>
    void
    forEachLive(Fn &&fn) const
    {
        for (SetId id = 0; id < metadata_.size(); ++id) {
            if (metadata_[id].live)
                fn(id);
        }
    }

  private:
    using Payload = std::variant<SortedArraySet, DenseBitset>;

    SetId allocateSlot();
    void refreshMetadata(SetId id);

    static constexpr mem::Addr sm_base_ = 0x0800000000ULL;
    static constexpr std::uint32_t sm_entry_bytes = 16;

    Element universe_;
    std::vector<Payload> payloads_;
    std::vector<SetMetadata> metadata_;
    std::vector<SetId> freeList_;
    std::uint64_t liveCount_ = 0;
    mem::AddressSpace space_;
    /** Lazy payloadChecksum cache; 0 in checksums_ = not computed. */
    mutable std::vector<std::uint64_t> checksums_;
    mutable std::vector<bool> checksumValid_;
};

} // namespace sisa::isa

#endif // SISA_SISA_SET_STORE_HPP
