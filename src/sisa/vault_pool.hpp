/**
 * @file
 * Host-side worker pool backing the SCU's batched dispatch. The pool
 * owns a fixed set of std::thread workers, each pinned to a disjoint
 * slice of the simulated vaults (vault v belongs to worker
 * v % size()), so per-vault state never needs synchronization: a
 * worker is the only thread that touches its vaults' operations and
 * cycle accumulators. run() hands every worker the same job and
 * blocks at a barrier until all of them finish, mirroring the SCU
 * waiting for the slowest vault.
 *
 * The pool is purely an execution vehicle for the host simulator; all
 * *modeled* parallelism (per-vault cycle accounting, cross-vault
 * transfer charges and byte counters, makespan merge) lives in
 * Scu::dispatchBatch. Each worker's private SimContext carries its
 * vaults' scu.xvault_transfers / setops.xvault_bytes tallies until
 * the barrier merges them into the issuing thread's context.
 */

#ifndef SISA_SISA_VAULT_POOL_HPP
#define SISA_SISA_VAULT_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sisa::isa {

/** Persistent worker threads for batched vault execution. */
class VaultWorkerPool
{
  public:
    /**
     * @param workers Number of host threads; clamped to >= 1. The
     *                caller decides the policy (hardware concurrency,
     *                config override, ...).
     */
    explicit VaultWorkerPool(std::uint32_t workers);

    ~VaultWorkerPool();

    VaultWorkerPool(const VaultWorkerPool &) = delete;
    VaultWorkerPool &operator=(const VaultWorkerPool &) = delete;

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(threads_.size());
    }

    /**
     * Execute @p job(w) on every worker w in [0, size()) and wait for
     * all of them (the batch barrier). Exceptions thrown by a job are
     * captured and rethrown here after the barrier.
     */
    void run(const std::function<void(std::uint32_t)> &job);

  private:
    void workerLoop(std::uint32_t index);

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::uint32_t)> *job_ = nullptr;
    std::uint64_t generation_ = 0;
    std::uint32_t remaining_ = 0;
    bool shutdown_ = false;
    std::vector<std::exception_ptr> errors_;
};

} // namespace sisa::isa

#endif // SISA_SISA_VAULT_POOL_HPP
