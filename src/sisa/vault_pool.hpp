/**
 * @file
 * Host-side worker pool backing the SCU's batched dispatch. The pool
 * owns a fixed set of std::thread workers. run() hands every worker
 * the same job and blocks at a barrier until all of them finish,
 * mirroring the SCU waiting for the slowest vault.
 *
 * runQueues() layers the SCU's per-vault ("lane") operation queues on
 * top with work stealing: lane l is OWNED by worker l % owners, and
 * the owner is the only thread that charges the lane's modeled cycles
 * -- in exact lane-op order, so per-lane accounting stays
 * deterministic no matter which thread executed an operation. Workers
 * that run out of owned work steal whole operations from the back of
 * the deepest remaining queue and execute them functionally; the
 * owner then only waits for the result instead of recomputing it.
 * Stealing therefore moves HOST work only: modeled cycles, counters,
 * and results are bit-identical with stealing on or off, and
 * invariant under the worker count.
 *
 * The pool is purely an execution vehicle for the host simulator; all
 * *modeled* parallelism (per-vault cycle accounting, cross-vault
 * transfer charges and byte counters, makespan merge) lives in
 * Scu::dispatchBatch. Each worker's private SimContext carries its
 * vaults' scu.xvault_transfers / setops.xvault_bytes tallies until
 * the barrier merges them into the issuing thread's context.
 *
 * SHARING. One pool may back several SCUs (Scu::adoptPool): the
 * serving layer's K query sessions dispatch into one set of host
 * workers instead of spawning K pools. The pool itself stays
 * single-dispatch -- runQueues' claim/beat scratch is not reentrant
 * -- so sharers must serialize their dispatches. The serving layer's
 * lockstep QueryScheduler (sisa/serving.hpp) guarantees exactly that:
 * at most one session holds the dispatch grant at a time.
 */

#ifndef SISA_SISA_VAULT_POOL_HPP
#define SISA_SISA_VAULT_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sisa::isa {

/** Persistent worker threads for batched vault execution. */
class VaultWorkerPool
{
  public:
    /**
     * @param workers Number of host threads; clamped to >= 1. The
     *                caller decides the policy (hardware concurrency,
     *                config override, ...).
     */
    explicit VaultWorkerPool(std::uint32_t workers);

    ~VaultWorkerPool();

    VaultWorkerPool(const VaultWorkerPool &) = delete;
    VaultWorkerPool &operator=(const VaultWorkerPool &) = delete;

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(threads_.size());
    }

    /**
     * Execute @p job(w) on every worker w in [0, size()) and wait for
     * all of them (the batch barrier). Exceptions thrown by a job are
     * captured and rethrown here after the barrier.
     */
    void run(const std::function<void(std::uint32_t)> &job);

    /**
     * Execute one dispatch's per-lane operation queues across the
     * pool with work stealing. Lane l (of lane_sizes.size() lanes,
     * lane_sizes[l] operations each) is owned by worker l % owners
     * for owners = min(@p owners, lanes): the owner walks its lanes
     * in index order and their operations front to back, calling
     * @p execute(lane, pos) for each operation it claims and
     * @p charge(worker, lane, pos) for EVERY operation of its lanes,
     * in order, after that operation's execute() completed. Workers
     * without owned work left (including pool workers beyond
     * @p owners) steal: they claim single operations from the back
     * of the queue with the most unclaimed operations and run only
     * execute() -- the owner still does the charging, so per-lane
     * accounting order is deterministic. Each operation's execute()
     * runs exactly once, on exactly one thread, and its effects are
     * visible to the charging owner (release/acquire on the per-op
     * claim state).
     *
     * @p steal false disables thieving -- used when execute() is a
     * no-op (pre-executed batches) and all remaining work is
     * owner-side charging, which cannot be stolen.
     *
     * @p lane_dead (optional) is the fault model's fail-stop hook: a
     * lane for which it returns true is on a dead vault -- nobody
     * executes or charges its operations (the SCU re-routes them in
     * its recovery pass) and its heartbeat counter stays at zero,
     * which is exactly the evidence the watchdog's timeout charge
     * models. nullptr (the fault-free case) changes nothing.
     */
    void runQueues(
        const std::vector<std::uint32_t> &lane_sizes,
        std::uint32_t owners,
        const std::function<void(std::uint32_t lane, std::uint32_t pos)>
            &execute,
        const std::function<void(std::uint32_t worker,
                                 std::uint32_t lane, std::uint32_t pos)>
            &charge,
        bool steal,
        const std::function<bool(std::uint32_t lane)> *lane_dead =
            nullptr);

    /**
     * Heartbeat of lane @p lane after the last runQueues: the number
     * of operations its owner charged. A lane whose vault died shows
     * zero beats -- the signal the SCU's heartbeat watchdog times out
     * on (introspection for the fault tests).
     */
    std::uint32_t
    laneBeats(std::uint32_t lane) const
    {
        const std::lock_guard<std::mutex> lock(beatMutex_);
        return lane < laneBeatsCapacity_
                   ? laneBeats_[lane].load(std::memory_order_relaxed)
                   : 0;
    }

    /**
     * Heartbeat accounting mode. Off (the default), every runQueues
     * call resets the beat counters first, so laneBeats() reports the
     * last dispatch only -- the barriered contract. The SCU's async
     * window turns accumulation ON for the window's lifetime: lanes
     * then accept operations from multiple in-flight batches, and the
     * watchdog evidence must span all of them, so beats accumulate
     * across runQueues calls until the mode is switched again. Either
     * transition clears the counters (a window opens, or closes, with
     * fresh evidence).
     */
    void setBeatAccumulation(bool accumulate);

  private:
    void workerLoop(std::uint32_t index);

    /** Claim lifecycle of one queued operation. */
    enum : std::uint8_t { op_free = 0, op_claimed = 1, op_done = 2 };

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::uint32_t)> *job_ = nullptr;
    std::uint64_t generation_ = 0;
    std::uint32_t remaining_ = 0;
    bool shutdown_ = false;
    std::vector<std::exception_ptr> errors_;

    // runQueues scratch, reused across dispatches (runQueues is not
    // reentrant -- one batch at a time, like the SCU that calls it).
    std::vector<std::size_t> queueOffsets_; ///< lane -> flat op base.
    std::unique_ptr<std::atomic<std::uint8_t>[]> opState_;
    std::size_t opStateCapacity_ = 0;
    /** Per-lane count of claimed ops (the thieves' depth estimate). */
    std::unique_ptr<std::atomic<std::uint32_t>[]> laneClaimed_;
    std::size_t laneClaimedCapacity_ = 0;
    /**
     * Per-lane charged-op heartbeats (see laneBeats). Guarded by
     * beatMutex_ against the shared-pool case: a session draining its
     * async window (setBeatAccumulation) may be host-concurrent with
     * another session's granted runQueues growing the array.
     */
    std::unique_ptr<std::atomic<std::uint32_t>[]> laneBeats_;
    std::size_t laneBeatsCapacity_ = 0;
    /** Accumulate beats across runQueues calls (async window). */
    bool accumulateBeats_ = false;
    mutable std::mutex beatMutex_;
};

} // namespace sisa::isa

#endif // SISA_SISA_VAULT_POOL_HPP
