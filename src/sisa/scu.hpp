/**
 * @file
 * The SISA Controller Unit (Sections 3c, 8.2, 8.4). The SCU receives
 * SISA instructions from the host core, consults the Set Metadata
 * (through the SMB cache), and schedules each instruction on the most
 * beneficial accelerator:
 *
 *  - two dense bitvectors -> SISA-PUM (Ambit-style in-situ bulk
 *    bitwise AND/OR/NOT over DRAM rows);
 *  - anything else        -> SISA-PNM (logic-layer cores), where the
 *    Section 8.3 performance models decide between the merge
 *    (streaming) and galloping (random access) set algorithms.
 *
 * Every instruction is executed functionally against the SetStore and
 * charged modeled cycles into the SimContext. Counters record the
 * dispatch decisions and the OpWork totals used by the Table 6
 * complexity validation.
 */

#ifndef SISA_SISA_SCU_HPP
#define SISA_SISA_SCU_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hpp"
#include "mem/pim.hpp"
#include "sets/operations.hpp"
#include "sim/context.hpp"
#include "sisa/isa.hpp"
#include "sisa/set_store.hpp"
#include "sisa/trace.hpp"

namespace sisa::isa {

/** SCU configuration (Sections 8.2, 8.4, 9.1). */
struct ScuConfig
{
    mem::PimParams pim{};
    /** SMB (SCU metadata cache) enabled; 32KB by default (9.1). */
    bool smbEnabled = true;
    /** One SMB shared by all threads vs. a private SMB per thread. */
    bool smbShared = false;
    /** Extra access latency of a shared SMB (Section 9.2). */
    mem::Cycles smbSharedExtraLatency = 2;
    std::uint64_t smbBytes = 32 * 1024;
    /**
     * Galloping selection rule: 0 uses the Section 8.3 performance
     * models; a value g > 0 uses the ratio heuristic instead (gallop
     * iff max >= g * min), the knob swept in Figure 7b.
     */
    double gallopThreshold = 0.0;
};

/** Which backend executed an instruction (for counters/tests). */
enum class Backend : std::uint8_t { Pum, PnmStream, PnmRandom, None };

/** The controller; all SISA instructions funnel through execute(). */
class Scu
{
  public:
    Scu(SetStore &store, const ScuConfig &config,
        std::uint32_t num_threads);

    SetStore &store() { return store_; }
    const ScuConfig &config() const { return config_; }

    // --- Typed instruction issue (the C-style wrapper targets) ----------

    /** A cap B -> new set. @p variant may force merge or galloping. */
    SetId intersect(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                    SetId b, SisaOp variant = SisaOp::IntersectAuto);

    /**
     * A_1 cap ... cap A_l -> new set, as ONE CISC-style instruction
     * (the Section 11 extension). The SCU sorts dense operands onto
     * the PUM path (a single multi-row AND pass) and folds sparse
     * operands in ascending-cardinality order on the PNM cores, with
     * one decode/metadata round instead of l - 1.
     */
    SetId intersectMany(sim::SimContext &ctx, sim::ThreadId tid,
                        const std::vector<SetId> &operands);

    /** A cup B -> new set. */
    SetId setUnion(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                   SetId b, SisaOp variant = SisaOp::UnionAuto);

    /** A setminus B -> new set. */
    SetId difference(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                     SetId b, SisaOp variant = SisaOp::DifferenceAuto);

    /** |A cap B| without materializing the intersection. */
    std::uint64_t intersectCard(sim::SimContext &ctx, sim::ThreadId tid,
                                SetId a, SetId b,
                                SisaOp variant = SisaOp::IntersectAuto);

    /** |A cup B| without materializing the union. */
    std::uint64_t unionCard(sim::SimContext &ctx, sim::ThreadId tid,
                            SetId a, SetId b);

    /** |A| (O(1): a metadata lookup). */
    std::uint64_t cardinality(sim::SimContext &ctx, sim::ThreadId tid,
                              SetId a);

    /** x in A. */
    bool member(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** A cup {x} in place (Table 5 op 0x5). */
    void insert(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** A setminus {x} in place (Table 5 op 0x6). */
    void remove(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** Create a set from sorted elements. */
    SetId create(sim::SimContext &ctx, sim::ThreadId tid,
                 std::vector<Element> elems, SetRepr repr);

    /** Create an empty set / the full universe set. */
    SetId createEmpty(sim::SimContext &ctx, sim::ThreadId tid,
                      SetRepr repr);
    SetId createFull(sim::SimContext &ctx, sim::ThreadId tid);

    /** Clone (RowClone for DBs, stream copy for SAs). */
    SetId clone(sim::SimContext &ctx, sim::ThreadId tid, SetId a);

    /** Destroy a set. */
    void destroy(sim::SimContext &ctx, sim::ThreadId tid, SetId a);

    /** Last dispatch decision (introspection for tests/benches). */
    Backend lastBackend() const { return lastBackend_; }

    /**
     * Attach an instruction trace: every subsequently issued set
     * operation is recorded in encoded form. Pass nullptr to detach.
     */
    void setTrace(InstructionTrace *trace) { trace_ = trace; }

    /** Would the SCU pick galloping for sizes (|A|, |B|)? */
    bool wouldGallop(std::uint64_t size_a, std::uint64_t size_b) const;

  private:
    /** Charge the SMB/SM lookup for @p id's metadata. */
    void chargeMetadata(sim::SimContext &ctx, sim::ThreadId tid, SetId id);

    /** Charge a PUM bulk op over @p n_bits, @p row_ops rows deep. */
    void chargePum(sim::SimContext &ctx, sim::ThreadId tid,
                   std::uint64_t n_bits, std::uint32_t row_ops);

    void chargePnmStream(sim::SimContext &ctx, sim::ThreadId tid,
                         std::uint64_t max_elems);

    void chargePnmRandom(sim::SimContext &ctx, sim::ThreadId tid,
                         std::uint64_t probes);

    /**
     * Charge a mixed SA-vs-DB operation over @p array_size elements:
     * the SCU picks bit-probing (independent random accesses) or
     * bitvector streaming, whichever the Section 8.3 models predict
     * to be cheaper.
     */
    void chargeMixedProbe(sim::SimContext &ctx, sim::ThreadId tid,
                          std::uint64_t array_size);

    void recordWork(sim::SimContext &ctx, const sets::OpWork &work);

    /** Record @p op into the attached trace, if any. */
    void
    traceOp(SisaOp op, SetId rd, SetId rs1,
            SetId rs2 = invalid_set)
    {
        if (trace_)
            trace_->record(op, rd, rs1, rs2);
    }

    SetStore &store_;
    ScuConfig config_;
    std::vector<std::unique_ptr<mem::Cache>> smbs_;
    Backend lastBackend_ = Backend::None;
    InstructionTrace *trace_ = nullptr;
};

} // namespace sisa::isa

#endif // SISA_SISA_SCU_HPP
