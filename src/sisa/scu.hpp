/**
 * @file
 * The SISA Controller Unit (Sections 3c, 8.2, 8.4). The SCU receives
 * SISA instructions from the host core, consults the Set Metadata
 * (through the SMB cache), and schedules each instruction on the most
 * beneficial accelerator:
 *
 *  - two dense bitvectors -> SISA-PUM (Ambit-style in-situ bulk
 *    bitwise AND/OR/NOT over DRAM rows);
 *  - anything else        -> SISA-PNM (logic-layer cores), where the
 *    Section 8.3 performance models decide between the merge
 *    (streaming) and galloping (random access) set algorithms.
 *
 * Every instruction is executed functionally against the SetStore and
 * charged modeled cycles into the SimContext. Counters record the
 * dispatch decisions and the OpWork totals used by the Table 6
 * complexity validation.
 */

#ifndef SISA_SISA_SCU_HPP
#define SISA_SISA_SCU_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "mem/cache.hpp"
#include "mem/pim.hpp"
#include "sets/operations.hpp"
#include "sim/context.hpp"
#include "sisa/batch.hpp"
#include "sisa/isa.hpp"
#include "sisa/placement.hpp"
#include "sisa/set_store.hpp"
#include "sisa/trace.hpp"
#include "sisa/vault_pool.hpp"

namespace sisa::isa {

/** SCU configuration (Sections 8.2, 8.4, 9.1). */
struct ScuConfig
{
    mem::PimParams pim{};
    /** SMB (SCU metadata cache) enabled; 32KB by default (9.1). */
    bool smbEnabled = true;
    /** One SMB shared by all threads vs. a private SMB per thread. */
    bool smbShared = false;
    /** Extra access latency of a shared SMB (Section 9.2). */
    mem::Cycles smbSharedExtraLatency = 2;
    std::uint64_t smbBytes = 32 * 1024;
    /**
     * Galloping selection rule: 0 uses the Section 8.3 performance
     * models; a value g > 0 uses the ratio heuristic instead (gallop
     * iff max >= g * min), the knob swept in Figure 7b.
     */
    double gallopThreshold = 0.0;
    /**
     * Host worker threads executing batched dispatches (one worker
     * serves vaults v with v % workers == worker id). 0 selects
     * std::thread::hardware_concurrency(); 1 disables the pool and
     * runs batches inline on the calling thread.
     */
    std::uint32_t batchWorkers = 0;
    /**
     * Set-to-vault placement policy consulted by dispatchBatch.
     * nullptr selects HashPlacement over pim.vaults (the historical
     * behavior). The policy's vault count should match pim.vaults;
     * out-of-range results are clamped by modulo.
     */
    std::shared_ptr<const PlacementPolicy> placement;
};

/** Which backend executed an instruction (for counters/tests). */
enum class Backend : std::uint8_t { Pum, PnmStream, PnmRandom, None };

/** The controller; all SISA instructions funnel through execute(). */
class Scu
{
  public:
    Scu(SetStore &store, const ScuConfig &config,
        std::uint32_t num_threads);

    SetStore &store() { return store_; }
    const ScuConfig &config() const { return config_; }

    // --- Typed instruction issue (the C-style wrapper targets) ----------

    /** A cap B -> new set. @p variant may force merge or galloping. */
    SetId intersect(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                    SetId b, SisaOp variant = SisaOp::IntersectAuto);

    /**
     * A_1 cap ... cap A_l -> new set, as ONE CISC-style instruction
     * (the Section 11 extension). The SCU sorts dense operands onto
     * the PUM path (a single multi-row AND pass) and folds sparse
     * operands in ascending-cardinality order on the PNM cores, with
     * one decode/metadata round instead of l - 1.
     */
    SetId intersectMany(sim::SimContext &ctx, sim::ThreadId tid,
                        const std::vector<SetId> &operands);

    /** A cup B -> new set. */
    SetId setUnion(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                   SetId b, SisaOp variant = SisaOp::UnionAuto);

    /** A setminus B -> new set. */
    SetId difference(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                     SetId b, SisaOp variant = SisaOp::DifferenceAuto);

    /** |A cap B| without materializing the intersection. */
    std::uint64_t intersectCard(sim::SimContext &ctx, sim::ThreadId tid,
                                SetId a, SetId b,
                                SisaOp variant = SisaOp::IntersectAuto);

    /** |A cup B| without materializing the union. */
    std::uint64_t unionCard(sim::SimContext &ctx, sim::ThreadId tid,
                            SetId a, SetId b);

    /**
     * Execute every operation of @p batch as ONE dispatch: a single
     * decode, one metadata round per operand, then concurrent
     * execution across the vaults. Each operation is routed to the
     * vault the placement policy assigns its primary operand;
     * operations on the same vault serialize, vaults run in parallel,
     * and the calling simulated thread is charged the makespan of the
     * slowest vault (merged at the barrier from per-worker
     * SimContexts) plus the cross-vault result reduction tree.
     *
     * Cross-vault traffic model: when an operation's co-operand
     * resolves to a DIFFERENT vault than its primary operand, the
     * co-operand's bytes first cross the interconnect at b_L
     * (mem::interconnectCycles), charged into that vault's lane --
     * once per (vault, remote operand) pair per dispatch, since the
     * vault buffers the operand for the batch's duration. Results of
     * a multi-vault batch reduce back to the SCU as a binary tree
     * over b_L whose per-level cost is the slowest sender. Counters:
     * scu.xvault_transfers, setops.xvault_bytes,
     * setops.xvault_reduce_bytes. Metadata-only short circuits
     * (empty results, zero cardinalities) never touch the
     * interconnect; a degenerate copy still moves data, so {} cup B
     * with a remote B pays B's transfer and its result reduces.
     *
     * Functional results and total setops.{streamed,probes,words,
     * output} counters are identical to issuing the same operations
     * serially, under every placement policy.
     */
    BatchResult dispatchBatch(sim::SimContext &ctx, sim::ThreadId tid,
                              const BatchRequest &batch);

    /** Simulated vault holding @p id (placement-policy assignment). */
    std::uint32_t vaultOf(SetId id) const;

    /** The active placement policy (never null). */
    const PlacementPolicy &placement() const { return *placement_; }

    /**
     * Install @p policy for subsequent dispatches (nullptr resets to
     * HashPlacement). Placement affects cycle charges and xvault
     * counters only, never functional results.
     */
    void setPlacement(std::shared_ptr<const PlacementPolicy> policy);

    /** |A| (O(1): a metadata lookup). */
    std::uint64_t cardinality(sim::SimContext &ctx, sim::ThreadId tid,
                              SetId a);

    /** x in A. */
    bool member(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** A cup {x} in place (Table 5 op 0x5). */
    void insert(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** A setminus {x} in place (Table 5 op 0x6). */
    void remove(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** Create a set from sorted elements. */
    SetId create(sim::SimContext &ctx, sim::ThreadId tid,
                 std::vector<Element> elems, SetRepr repr);

    /** Create an empty set / the full universe set. */
    SetId createEmpty(sim::SimContext &ctx, sim::ThreadId tid,
                      SetRepr repr);
    SetId createFull(sim::SimContext &ctx, sim::ThreadId tid);

    /** Clone (RowClone for DBs, stream copy for SAs). */
    SetId clone(sim::SimContext &ctx, sim::ThreadId tid, SetId a);

    /** Destroy a set. */
    void destroy(sim::SimContext &ctx, sim::ThreadId tid, SetId a);

    /** Last dispatch decision (introspection for tests/benches). */
    Backend lastBackend() const { return lastBackend_; }

    /**
     * Attach an instruction trace: every subsequently issued set
     * operation is recorded in encoded form. Pass nullptr to detach.
     */
    void setTrace(InstructionTrace *trace) { trace_ = trace; }

    /** Would the SCU pick galloping for sizes (|A|, |B|)? */
    bool wouldGallop(std::uint64_t size_a, std::uint64_t size_b) const;

  private:
    /**
     * One planned-and-executed binary set operation, produced by
     * executeBinary() without touching any SimContext or the store's
     * id space. Serial dispatch applies it to the calling thread;
     * batched dispatch applies it to a vault lane. Keeping a single
     * execution path is what guarantees batched and serial dispatch
     * pick identical plans and produce identical results.
     */
    struct OpCharge
    {
        Backend backend = Backend::None;
        mem::Cycles cycles = 0;
    };

    struct OpOutcome
    {
        std::variant<std::monostate, SortedArraySet, DenseBitset>
            payload; ///< Result set for materializing ops.
        std::uint64_t scalar = 0;  ///< Cardinality for *Card ops.
        sets::OpWork work;         ///< setops.* accounting.
        std::array<OpCharge, 3> charges{};
        std::uint32_t numCharges = 0;
        bool shortCircuited = false; ///< Zero-cardinality fast path.
        /**
         * Whether executing the op pulls operand B's payload into
         * the vault (so a remote B pays the b_L transfer). False for
         * metadata-only short circuits AND for degenerate copies of
         * A; true for everything else including the degenerate copy
         * of B ({} cup B streams B's bytes).
         */
        bool readsCoOperand = true;

        void
        addCharge(Backend backend, mem::Cycles cycles)
        {
            charges[numCharges++] = {backend, cycles};
        }
    };

    /**
     * Plan and execute one binary set operation (Section 8.2/8.3
     * dispatch rules; zero-cardinality operands short-circuit to a
     * metadata-only charge). Reads the store but never mutates it.
     */
    OpOutcome executeBinary(BatchOpKind kind, SetId a, SetId b,
                            SisaOp variant) const;

    /**
     * Charge @p outcome's cycles and counters to (@p ctx, @p tid).
     * Never mutates `this` -- batch workers call it concurrently on
     * their private contexts.
     */
    void chargeOutcome(sim::SimContext &ctx, sim::ThreadId tid,
                       const OpOutcome &outcome);

    /** chargeOutcome + lastBackend_ update (serial issue only). */
    void applyOutcome(sim::SimContext &ctx, sim::ThreadId tid,
                      const OpOutcome &outcome);

    /** Adopt the payload (if any) into the store. */
    SetId adoptOutcome(OpOutcome &&outcome);

    // --- Pure Section 8.3 cost predictors (no side effects) -----------

    mem::Cycles pumCost(std::uint64_t n_bits,
                        std::uint32_t row_ops) const;
    mem::Cycles streamCost(std::uint64_t max_elems) const;
    /** DB word streams are priced at 8 bytes per word. */
    mem::Cycles streamDbWordsCost(std::uint64_t words) const;
    mem::Cycles randomCost(std::uint64_t probes) const;

    struct MixedPlan
    {
        Backend backend = Backend::PnmRandom;
        mem::Cycles cycles = 0;
    };

    /**
     * SA-vs-DB plan: bit-probe each of @p array_size elements, or
     * stream the bitvector past the array -- whichever the models
     * predict cheaper, with both plans priced in bytes.
     */
    MixedPlan mixedProbePlan(std::uint64_t array_size) const;

    /** Charge the SMB/SM lookup for @p id's metadata. */
    void chargeMetadata(sim::SimContext &ctx, sim::ThreadId tid, SetId id);

    /** Charge a PUM bulk op over @p n_bits, @p row_ops rows deep. */
    void chargePum(sim::SimContext &ctx, sim::ThreadId tid,
                   std::uint64_t n_bits, std::uint32_t row_ops);

    void chargePnmStream(sim::SimContext &ctx, sim::ThreadId tid,
                         std::uint64_t max_elems);

    void chargePnmRandom(sim::SimContext &ctx, sim::ThreadId tid,
                         std::uint64_t probes);

    /**
     * Charge a mixed SA-vs-DB operation over @p array_size elements:
     * the SCU picks bit-probing (independent random accesses) or
     * bitvector streaming, whichever the Section 8.3 models predict
     * to be cheaper.
     */
    void chargeMixedProbe(sim::SimContext &ctx, sim::ThreadId tid,
                          std::uint64_t array_size);

    void recordWork(sim::SimContext &ctx, const sets::OpWork &work);

    /** Record @p op into the attached trace, if any. */
    void
    traceOp(SisaOp op, SetId rd, SetId rs1,
            SetId rs2 = invalid_set)
    {
        if (trace_)
            trace_->record(op, rd, rs1, rs2);
    }

    /** The worker pool, created lazily on the first parallel batch. */
    VaultWorkerPool &pool();

    /** Effective host worker count for batched dispatch. */
    std::uint32_t batchWorkerCount() const;

    /**
     * Result footprint of @p outcome in bytes, as moved by the
     * cross-vault reduction tree (SA payloads at 4 B/element, DB
     * payloads at denseBytes(), scalars at 8 B).
     */
    std::uint64_t resultBytes(const OpOutcome &outcome) const;

    /** Footprint of operand @p id when fetched from a remote vault. */
    std::uint64_t operandBytes(SetId id) const;

    SetStore &store_;
    ScuConfig config_;
    std::shared_ptr<const PlacementPolicy> placement_;
    std::vector<std::unique_ptr<mem::Cache>> smbs_;
    Backend lastBackend_ = Backend::None;
    InstructionTrace *trace_ = nullptr;
    std::unique_ptr<VaultWorkerPool> pool_;

    // Scratch reused across dispatchBatch calls so a small batch does
    // not pay fresh allocations (instruction issue on one SCU is not
    // reentrant, like the SMB state above).
    std::vector<std::uint32_t> vaultLane_; ///< vault -> lane or ~0u.
    std::vector<std::uint32_t> laneVault_; ///< lane -> vault (reset list).
    std::vector<std::vector<std::uint32_t>> laneOps_;
    std::vector<OpOutcome> outcomes_;
    std::vector<std::uint64_t> xferBytes_; ///< op -> remote-operand bytes (0 = local).
    std::vector<std::uint64_t> laneResultBytes_;
};

} // namespace sisa::isa

#endif // SISA_SISA_SCU_HPP
