/**
 * @file
 * The SISA Controller Unit (Sections 3c, 8.2, 8.4). The SCU receives
 * SISA instructions from the host core, consults the Set Metadata
 * (through the SMB cache), and schedules each instruction on the most
 * beneficial accelerator:
 *
 *  - two dense bitvectors -> SISA-PUM (Ambit-style in-situ bulk
 *    bitwise AND/OR/NOT over DRAM rows);
 *  - anything else        -> SISA-PNM (logic-layer cores), where the
 *    Section 8.3 performance models decide between the merge
 *    (streaming) and galloping (random access) set algorithms.
 *
 * Every instruction is executed functionally against the SetStore and
 * charged modeled cycles into the SimContext. Counters record the
 * dispatch decisions and the OpWork totals used by the Table 6
 * complexity validation.
 */

#ifndef SISA_SISA_SCU_HPP
#define SISA_SISA_SCU_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "mem/cache.hpp"
#include "mem/pim.hpp"
#include "sets/operations.hpp"
#include "sim/context.hpp"
#include "sisa/analysis.hpp"
#include "sisa/batch.hpp"
#include "sisa/faults.hpp"
#include "sisa/isa.hpp"
#include "sisa/placement.hpp"
#include "sisa/serving.hpp"
#include "sisa/set_store.hpp"
#include "sisa/trace.hpp"
#include "sisa/vault_pool.hpp"

namespace sisa::isa {

/**
 * Execution-vault routing rule for batched operations.
 *
 *  - Primary:  run every op in the vault of operand `a` (the
 *              historical behavior): a remote `b` crosses the
 *              interconnect regardless of how large it is.
 *  - MinBytes: run the op where the BIGGER operand (by footprint)
 *              lives and move only the smaller co-operand -- the
 *              data-movement-minimizing rule; ties keep `a`'s vault
 *              so Primary remains a strict subset of the behavior.
 *  - Balanced: makespan-driven batch scheduling. dispatchBatch first
 *              executes every operation functionally (caching the
 *              exact cycle charges), then runs an LPT list scheduler
 *              over them: operations are taken in descending cost
 *              order and each is assigned to whichever of its two
 *              operand vaults completes it earlier --
 *              lane_depth + exec + interconnect(co-operand left
 *              remote), with the once-per-(vault, operand) transfer
 *              dedup priced in. Ties keep `a`'s vault, so a single
 *              op degenerates to the MinBytes rule. Because the
 *              scheduler consumes the very charges that are later
 *              billed, estimate and charge can never diverge. This
 *              is the knob that erases MinBytes' lane-concentration
 *              cycle regression while keeping most of its byte cut.
 */
enum class Routing : std::uint8_t { Primary, MinBytes, Balanced };

/**
 * Static batch verification mode (sisa/analysis.hpp). Off skips the
 * analyzer entirely -- dispatchBatch is instruction-identical to a
 * build without the analysis layer (the zero-overhead guarantee,
 * pinned by the golden trace). Warn analyzes every batch before
 * execution and reports findings (scu.analysis_* counters, one
 * warning line per offending dispatch) but still executes; Strict
 * additionally hard-fails the dispatch with analysis::AnalysisError
 * on any ERROR-severity diagnostic, BEFORE the batch consumes a
 * dispatch sequence number or charges any cycle. The analyzer is
 * host-side tooling: no mode charges modeled cycles.
 */
enum class AnalyzeMode : std::uint8_t { Off, Warn, Strict };

/** SCU configuration (Sections 8.2, 8.4, 9.1). */
struct ScuConfig
{
    mem::PimParams pim{};
    /** SMB (SCU metadata cache) enabled; 32KB by default (9.1). */
    bool smbEnabled = true;
    /** One SMB shared by all threads vs. a private SMB per thread. */
    bool smbShared = false;
    /** Extra access latency of a shared SMB (Section 9.2). */
    mem::Cycles smbSharedExtraLatency = 2;
    std::uint64_t smbBytes = 32 * 1024;
    /**
     * Galloping selection rule: 0 uses the Section 8.3 performance
     * models; a value g > 0 uses the ratio heuristic instead (gallop
     * iff max >= g * min), the knob swept in Figure 7b.
     */
    double gallopThreshold = 0.0;
    /**
     * Host worker threads executing batched dispatches (one worker
     * serves vaults v with v % workers == worker id). 0 selects
     * std::thread::hardware_concurrency(); 1 disables the pool and
     * runs batches inline on the calling thread.
     */
    std::uint32_t batchWorkers = 0;
    /**
     * Set-to-vault placement policy consulted by dispatchBatch.
     * nullptr selects HashPlacement over pim.vaults (the historical
     * behavior). The policy's vault count MUST match pim.vaults:
     * setPlacement rejects a mismatched policy (with a warning) and
     * rebuilds the hash fallback at the correct width instead of
     * silently folding out-of-range vaults by modulo, which skewed
     * the placement distribution. Held non-const because the SCU
     * drives DynamicPlacement's mutating barrier hooks (observe /
     * collectMigrations / decayBarrier / forget) through it; plain
     * policies are never mutated.
     */
    std::shared_ptr<PlacementPolicy> placement;
    /** Execution-vault routing rule for batched dispatch. */
    Routing routing = Routing::Primary;
    /**
     * Balanced routing's bytes-vs-makespan knob: after the LPT pass
     * establishes the best achievable batch makespan M*, the byte-
     * harvesting pass may deepen a lane up to M* x (1 +
     * balancedSlack) to keep an operation at its byte-lighter vault.
     * 0 harvests only bytes that are strictly free; larger values
     * approach MinBytes' byte cut at MinBytes' concentration cost.
     */
    double balancedSlack = 0.5;
    /**
     * Fault-injection and recovery model (sisa/faults.hpp). Disabled
     * by default; with faults.enabled false the SCU never constructs
     * an injector and every dispatch is cycle-identical to a build
     * without the fault layer (the zero-overhead guarantee).
     */
    FaultConfig faults{};
    /**
     * Static pre-execution verification of every dispatched batch
     * (operand liveness, vault range, duplicate-lane waste -- the
     * sisa/batch.hpp hazard contract). Off by default.
     */
    AnalyzeMode analyze = AnalyzeMode::Off;
    /**
     * In-flight dispatch window of Scu::dispatchAsync: up to
     * asyncDepth batches may be pending retirement at once, so a
     * batch whose operands have no RAW/WAR/WAW edge to a pending
     * result starts on idle vault lanes instead of waiting for the
     * previous batch's barrier. 0 (the default) disables the window
     * -- dispatchAsync degenerates to dispatchBatch plus an
     * immediately-retired ticket. Overlap moves cycle charges only:
     * results, ids, traces, and functional counters stay
     * bit-identical to the barriered path (the batch.hpp CROSS-BATCH
     * HAZARDS contract).
     */
    std::uint32_t asyncDepth = 0;
};

/** Which backend executed an instruction (for counters/tests). */
enum class Backend : std::uint8_t { Pum, PnmStream, PnmRandom, None };

/** The controller; all SISA instructions funnel through execute(). */
class Scu
{
  public:
    Scu(SetStore &store, const ScuConfig &config,
        std::uint32_t num_threads);

    SetStore &store() { return store_; }
    const ScuConfig &config() const { return config_; }

    // --- Typed instruction issue (the C-style wrapper targets) ----------

    /** A cap B -> new set. @p variant may force merge or galloping. */
    SetId intersect(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                    SetId b, SisaOp variant = SisaOp::IntersectAuto);

    /**
     * A_1 cap ... cap A_l -> new set, as ONE CISC-style instruction
     * (the Section 11 extension). The SCU sorts dense operands onto
     * the PUM path (a single multi-row AND pass) and folds sparse
     * operands in ascending-cardinality order on the PNM cores, with
     * one decode/metadata round instead of l - 1.
     */
    SetId intersectMany(sim::SimContext &ctx, sim::ThreadId tid,
                        const std::vector<SetId> &operands);

    /** A cup B -> new set. */
    SetId setUnion(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                   SetId b, SisaOp variant = SisaOp::UnionAuto);

    /** A setminus B -> new set. */
    SetId difference(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                     SetId b, SisaOp variant = SisaOp::DifferenceAuto);

    /** |A cap B| without materializing the intersection. */
    std::uint64_t intersectCard(sim::SimContext &ctx, sim::ThreadId tid,
                                SetId a, SetId b,
                                SisaOp variant = SisaOp::IntersectAuto);

    /** |A cup B| without materializing the union. */
    std::uint64_t unionCard(sim::SimContext &ctx, sim::ThreadId tid,
                            SetId a, SetId b);

    /**
     * Execute every operation of @p batch as ONE dispatch: a single
     * decode, one metadata round per operand, then concurrent
     * execution across the vaults. Each operation is routed to an
     * execution vault by the configured Routing rule (the primary
     * operand's vault; the bigger operand's under MinBytes; the
     * vault the LPT batch scheduler picks under Balanced -- see the
     * Routing enum); operations on the same vault serialize, vaults
     * run in parallel, and the calling simulated thread is charged
     * the makespan of the slowest vault (merged at the barrier from
     * per-worker SimContexts) plus the cross-vault result reduction
     * tree. On the host, the per-vault queues run on the worker pool
     * with work stealing (VaultWorkerPool::runQueues): idle workers
     * execute ops of the deepest queue while the owner retains all
     * cycle charging, so wall-clock tracks the balanced makespan
     * without disturbing the deterministic modeled accounting.
     *
     * Cross-vault traffic model: when an operation's co-operand
     * resolves to a DIFFERENT vault than its execution vault, the
     * co-operand's bytes first cross the interconnect at b_L
     * (mem::interconnectCycles), charged into that vault's lane --
     * once per (vault, remote operand) pair per dispatch, since the
     * vault buffers the operand for the batch's duration. Results of
     * a multi-vault batch reduce back to the SCU as a binary tree
     * over b_L whose per-level cost is the slowest sender. Counters:
     * scu.xvault_transfers, setops.xvault_bytes,
     * setops.xvault_reduce_bytes. Metadata-only short circuits
     * (empty results, zero cardinalities) never touch the
     * interconnect; a degenerate copy still moves the operand it
     * reads, so {} cup B with a remote B pays B's transfer (under
     * MinBytes it instead executes in B's vault for free) and its
     * result reduces.
     *
     * Dispatch barriers close with dynamic re-placement when a
     * DynamicPlacement policy is installed: the charged transfers
     * are fed to the policy as observations, and each migration it
     * returns moves the set's footprint once over the interconnect
     * (serialized on the issuing thread; counters scu.migrations,
     * setops.migration_bytes) and repins the set in the placement
     * overlay, so later dispatches find it local.
     *
     * Functional results and total setops.{streamed,probes,words,
     * output} counters are identical to issuing the same operations
     * serially, under every placement policy and routing rule; so is
     * lastBackend() (both paths track the last operation that
     * actually charged a backend).
     */
    BatchResult dispatchBatch(sim::SimContext &ctx, sim::ThreadId tid,
                              const BatchRequest &batch);

    /**
     * dispatchBatch without the barrier (config().asyncDepth > 0):
     * the batch executes functionally IN ORDER at dispatch -- same
     * results, result ids, traces, and functional counters as
     * dispatchBatch, bit for bit -- but its modeled completion joins
     * an in-flight window instead of stalling the issuing thread.
     * Per-vault virtual lane clocks carry load across the window's
     * batches; the scoreboard (analysis::DependencyWindow) joins the
     * new batch's lifted Program against the unretired defs, so an op
     * reading a pending result starts at that result's modeled
     * completion while independent ops start on idle lanes
     * immediately. The issuing thread is charged only when it truly
     * has to wait: the ROB-style in-order retire when more than
     * asyncDepth batches are pending, a serial-op dependency
     * (syncRead), or drainWindow -- and then as STALL cycles, so
     * makespan can only shrink relative to the barriered path.
     *
     * The window is bound to the dispatching (ctx, tid): a dispatch
     * or serial op from a different context/thread drains it first
     * (charging the bound thread). Permanent vault failures fence the
     * window: a dispatch whose sequence number carries fail points
     * drains and delegates to dispatchBatch, so watchdog/quarantine/
     * recovery semantics stay exactly barriered. Transient faults
     * (corruption, drops, stalls) flow through unchanged -- same
     * dispatch coordinates, same charges, same BatchFaultSummary.
     *
     * The returned handle's BatchResult is complete immediately;
     * collectBatch forwards it without charging (the SCU's result
     * registers, not the vaults, satisfy the read).
     */
    BatchHandle dispatchAsync(sim::SimContext &ctx, sim::ThreadId tid,
                              const BatchRequest &batch);

    /**
     * Redeem @p handle for its BatchResult (single use). Charges
     * nothing: the in-order front end completed the batch
     * functionally at dispatch, so this is ROB value forwarding, not
     * a synchronization point. Asserts on an unknown or
     * already-collected ticket.
     */
    BatchResult collectBatch(sim::SimContext &ctx, sim::ThreadId tid,
                             BatchHandle handle);

    /**
     * Retire every in-flight async dispatch: the bound thread is
     * charged the stall up to the latest pending modeled completion,
     * the scoreboard and lane clocks reset, and heartbeat
     * accumulation ends. A no-op when no window is active. Collected
     * and uncollected results survive (collectBatch still works).
     */
    void drainWindow(sim::SimContext &ctx, sim::ThreadId tid);

    /**
     * RAW edge from a serial read of @p id into the async window: if
     * a pending dispatch materializes @p id, stall (ctx, tid) to its
     * modeled completion. Engines call this before reading a set's
     * payload outside the batch path (e.g. element enumeration).
     * A no-op when no window is active or @p id is not pending.
     */
    void syncRead(sim::SimContext &ctx, sim::ThreadId tid, SetId id);

    /** In-flight async dispatches not yet retired (introspection). */
    std::size_t asyncInFlight() const { return pendingTickets_.size(); }

    /** Is an async window currently bound to a context? */
    bool asyncWindowActive() const { return windowCtx_ != nullptr; }

    /**
     * Simulated vault holding @p id: the result/migration overlay
     * first, then the installed placement policy.
     */
    std::uint32_t vaultOf(SetId id) const;

    /**
     * Execution vault for one batched operation under the configured
     * routing rule: vaultOf(a) for Routing::Primary, the vault of
     * the larger-footprint operand (ties keep a's vault) for
     * Routing::MinBytes. Routing::Balanced schedules whole batches
     * against per-vault load, which a single-op query cannot see;
     * with empty lanes its greedy choice IS the MinBytes rule, so
     * that is what this (and serial issue) report for it.
     */
    std::uint32_t routeVault(const BatchOp &op) const;

    /** The active placement policy (never null). */
    const PlacementPolicy &placement() const { return *placement_; }

    /**
     * Install @p policy for subsequent dispatches (nullptr resets to
     * HashPlacement). A policy built for a different vault count
     * than config().pim.vaults is rejected with a warning and
     * replaced by a correct-width HashPlacement (never folded by
     * modulo). Clears the result/migration overlay. Placement
     * affects cycle charges and xvault counters only, never
     * functional results. Taken non-const so the SCU can keep the
     * mutating DynamicPlacement barrier-hook handle the type system
     * now requires; routing still goes through a const view.
     */
    void setPlacement(std::shared_ptr<PlacementPolicy> policy);

    /** |A| (O(1): a metadata lookup). */
    std::uint64_t cardinality(sim::SimContext &ctx, sim::ThreadId tid,
                              SetId a);

    /** x in A. */
    bool member(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** A cup {x} in place (Table 5 op 0x5). */
    void insert(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** A setminus {x} in place (Table 5 op 0x6). */
    void remove(sim::SimContext &ctx, sim::ThreadId tid, SetId a,
                Element x);

    /** Create a set from sorted elements. */
    SetId create(sim::SimContext &ctx, sim::ThreadId tid,
                 std::vector<Element> elems, SetRepr repr);

    /** Create an empty set / the full universe set. */
    SetId createEmpty(sim::SimContext &ctx, sim::ThreadId tid,
                      SetRepr repr);
    SetId createFull(sim::SimContext &ctx, sim::ThreadId tid);

    /** Clone (RowClone for DBs, stream copy for SAs). */
    SetId clone(sim::SimContext &ctx, sim::ThreadId tid, SetId a);

    /** Destroy a set. */
    void destroy(sim::SimContext &ctx, sim::ThreadId tid, SetId a);

    /**
     * Last dispatch decision (introspection for tests/benches): the
     * backend of the most recent operation that actually charged a
     * backend. Metadata-only short circuits leave it untouched, and
     * batched dispatch scans back to the last charging op of the
     * batch, so serial and batched issue of the same operation
     * sequence always agree.
     */
    Backend lastBackend() const { return lastBackend_; }

    /**
     * Capacity of the per-op dispatch scratch (test introspection
     * for the shrink-to-high-watermark policy: after a one-off burst
     * batch, a window of small dispatches releases the burst's
     * allocation instead of holding it forever).
     */
    std::size_t scratchCapacity() const { return outcomes_.capacity(); }

    /**
     * Attach an instruction trace: every subsequently issued set
     * operation is recorded in encoded form. Pass nullptr to detach.
     */
    void setTrace(InstructionTrace *trace) { trace_ = trace; }

    /** Would the SCU pick galloping for sizes (|A|, |B|)? */
    bool wouldGallop(std::uint64_t size_a, std::uint64_t size_b) const;

    /** The fault injector, or nullptr when config().faults is off. */
    const FaultInjector *faultInjector() const { return faults_.get(); }

    /** Has @p vault been quarantined by a permanent failure? */
    bool
    vaultQuarantined(std::uint32_t vault) const
    {
        return quarantine_.contains(vault);
    }

    /**
     * Sequence number the NEXT non-empty dispatchBatch will carry --
     * the dispatch coordinate fault points are addressed by (empty
     * batches return early and do not consume a number).
     */
    std::uint64_t dispatchIndex() const { return dispatchCounter_; }

    // --- Multi-tenant serving (sisa/serving.hpp) ----------------------

    /**
     * Attach this SCU to an admission scheduler as @p query. Every
     * subsequent non-empty dispatch first blocks in sched->admit()
     * and afterwards reports its DispatchDemand: the own-cycle delta
     * of @p ctx since the previous report -- summed over all of the
     * session's modeled threads, so any tid may issue -- (front-end
     * charges, makespan, retire stalls, interleaved serial ops) plus
     * the per-vault busy cycles the dispatch queued on the shared
     * lanes. The first delta's baseline is @p ctx's CURRENT cycle
     * total, so session setup stays outside the served timeline.
     * Scheduling gates modeled time only -- results, ids, and
     * setops.* totals are untouched. unbindQuery() detaches.
     */
    void bindQuery(QueryScheduler &sched, sim::QueryId query,
                   const sim::SimContext &ctx);

    /**
     * Detach from the scheduler and return the unreported tail of
     * the demand (own cycles since the last dispatch's report) for
     * the session's QueryScheduler::leave() call.
     */
    DispatchDemand unbindQuery(const sim::SimContext &ctx);

    /** The scheduler query this SCU dispatches as (or no_query). */
    sim::QueryId boundQuery() const { return query_; }

    /**
     * Share one host worker pool among several SCUs -- the serving
     * layer's K sessions must not spawn K pools. Callers own the
     * serialization guarantee (runQueues is not reentrant): the
     * lockstep QueryScheduler provides exactly that, and the pool
     * must have been built for at least this SCU's batchWorkers.
     */
    void adoptPool(std::shared_ptr<VaultWorkerPool> pool);

    /** This SCU's pool as a shareable handle (created on demand). */
    std::shared_ptr<VaultWorkerPool> sharedPool();

  private:
    /**
     * One planned-and-executed binary set operation, produced by
     * executeBinary() without touching any SimContext or the store's
     * id space. Serial dispatch applies it to the calling thread;
     * batched dispatch applies it to a vault lane. Keeping a single
     * execution path is what guarantees batched and serial dispatch
     * pick identical plans and produce identical results.
     */
    struct OpCharge
    {
        Backend backend = Backend::None;
        mem::Cycles cycles = 0;
    };

    struct OpOutcome
    {
        std::variant<std::monostate, SortedArraySet, DenseBitset>
            payload; ///< Result set for materializing ops.
        std::uint64_t scalar = 0;  ///< Cardinality for *Card ops.
        sets::OpWork work;         ///< setops.* accounting.
        std::array<OpCharge, 3> charges{};
        std::uint32_t numCharges = 0;
        bool shortCircuited = false; ///< Zero-cardinality fast path.
        /**
         * Whether executing the op pulls the given operand's payload
         * into the execution vault (so that operand, when remote,
         * pays the b_L transfer). Metadata-only short circuits read
         * neither; a degenerate copy reads only the operand it
         * copies ({} cup B streams B's bytes but never touches A).
         * Which flag matters per op depends on the routing decision:
         * the co-operand left remote may be A or B.
         */
        bool readsA = true;
        bool readsB = true;
        /**
         * Fault-retry penalty accumulated by executeOp (wasted
         * executions + failed verifies + backoff), charged by the
         * owning lane in chargeOutcome. Zero on the fault-free path.
         */
        mem::Cycles faultCycles = 0;
        std::uint32_t faultRetries = 0;

        void
        addCharge(Backend backend, mem::Cycles cycles)
        {
            charges[numCharges++] = {backend, cycles};
        }
    };

    /**
     * Plan and execute one binary set operation (Section 8.2/8.3
     * dispatch rules; zero-cardinality operands short-circuit to a
     * metadata-only charge). Reads the store but never mutates it.
     */
    OpOutcome executeBinary(BatchOpKind kind, SetId a, SetId b,
                            SisaOp variant) const;

    /**
     * executeBinary plus the transient-fault retry loop of batched
     * dispatch: while the injector corrupts attempt k of
     * (@p dispatch, @p op_index), the checksum the vault shipped with
     * the result disagrees with the one the SCU recomputes, and the
     * op re-executes after an exponential backoff -- the wasted
     * execution, the failed verify, and the backoff accumulate into
     * the outcome's faultCycles (charged later by the owning lane).
     * Because executeBinary is deterministic, the surviving clean
     * execution is bit-identical to the fault-free result and the
     * setops.* work counters are those of exactly one execution.
     * Throws UnrecoverableFaultError past config.faults.maxRetries.
     * With the injector off this IS executeBinary.
     */
    OpOutcome executeOp(std::uint64_t dispatch, std::uint32_t op_index,
                        const BatchOp &op) const;

    /**
     * Modeled cost of one checksum verify over @p bytes: the payload
     * streams once through the vault's checksum unit at the PNM
     * word-stream rate (mem::pnmStreamBytesCycles).
     */
    mem::Cycles verifyCycles(std::uint64_t bytes) const;

    /** FNV-1a checksum of an outcome's result payload (or scalar). */
    static std::uint64_t outcomeChecksum(const OpOutcome &outcome);

    /**
     * Permanent-failure recovery step: mark @p vault dead (throws
     * UnrecoverableFaultError if it is the last live vault) and
     * emergency-migrate every set resident on it to its quarantine
     * remap target, charging one b_L interconnect crossing per
     * evacuated footprint to (@p ctx, @p tid) -- serialized on the
     * issuing thread, since the SCU drives the repair. Counters:
     * scu.quarantines, setops.recovery_bytes.
     */
    void quarantineVault(sim::SimContext &ctx, sim::ThreadId tid,
                         std::uint32_t vault);

    /**
     * Charge @p outcome's cycles and counters to (@p ctx, @p tid).
     * Never mutates `this` -- batch workers call it concurrently on
     * their private contexts.
     */
    void chargeOutcome(sim::SimContext &ctx, sim::ThreadId tid,
                       const OpOutcome &outcome);

    /** chargeOutcome + lastBackend_ update (serial issue only). */
    void applyOutcome(sim::SimContext &ctx, sim::ThreadId tid,
                      const OpOutcome &outcome);

    /**
     * THE lastBackend_ rule, shared by serial issue (applyOutcome)
     * and the batched backward scan: an outcome that charged a
     * backend updates lastBackend_ to its final charge's backend; a
     * metadata-only outcome retains the previous value. One rule in
     * one place is what keeps serial and batched issue of the same
     * operation sequence in exact agreement.
     */
    void retainOrUpdateLastBackend(const OpOutcome &outcome);

    /** Adopt the payload (if any) into the store. */
    SetId adoptOutcome(OpOutcome &&outcome);

    /**
     * adoptOutcome + result pinning for serial binary ops: under a
     * result-placing policy the result pins to the vault
     * resolveRoute(a, b) picks (routing is not worth resolving
     * otherwise -- the overlay is provably empty).
     */
    SetId adoptPlacedOutcome(OpOutcome &&outcome, SetId a, SetId b);

    /**
     * One routing decision: the execution vault plus the co-operand
     * (if any) that stayed remote and would have to cross the
     * interconnect before the vault can execute.
     */
    struct OpRoute
    {
        std::uint32_t vault = 0;
        SetId remote = invalid_set; ///< Remote co-operand or invalid.
        std::uint64_t bytes = 0;    ///< Its footprint (0 = co-located).
        bool remoteIsB = true;      ///< Which read flag gates the transfer.
    };

    /** Routing under config().routing; pure, metadata-only. */
    OpRoute resolveRoute(SetId a, SetId b) const;

    /**
     * Balanced-routing phase 1: execute every batch operation
     * functionally into outcomes_ (in parallel on the worker pool,
     * with stealing) WITHOUT charging anything -- the scheduler needs
     * the exact per-op cycle charges before it can assign vaults.
     * @p dispatch is the dispatch sequence number (fault coordinate).
     */
    void preExecuteOutcomes(const BatchRequest &batch,
                            std::uint64_t dispatch);

    /**
     * Balanced-routing phase 2: LPT list scheduling over the cached
     * outcomes. Operations are assigned in descending execution-cost
     * order; each goes to whichever of its two operand vaults
     * minimizes lane_depth + exec + interconnect(co-operand left
     * remote), with the once-per-(vault, operand) transfer dedup the
     * charge path applies priced in (so the scheduled lane depths
     * equal the cycles later charged, exactly). Ties keep a's vault.
     * Fills routes_ for the normal lane-building/charging path.
     */
    void scheduleBalanced(const BatchRequest &batch);

    /** Total cycles @p outcome will charge (the scheduler's cost). */
    static mem::Cycles outcomeCycles(const OpOutcome &outcome);

    /**
     * Register an adopted result set at the vault that produced it
     * (policies with placesResults()), or scrub a stale overlay
     * entry for the recycled slot otherwise.
     */
    void placeResult(SetId id, std::uint32_t vault);

    /** Drop overlay/heat state for a recycled or destroyed id. */
    void forgetPlacement(SetId id);

    /**
     * Barrier step of dynamic re-placement: feed the transfers the
     * workers recorded in laneFetched_ (exactly the charged ones, in
     * deterministic lane order) to the DynamicPlacement policy and
     * apply + charge the migrations it returns.
     */
    void replaceAtBarrier(sim::SimContext &ctx, sim::ThreadId tid,
                          std::uint32_t lanes);

    /**
     * Shrink-to-high-watermark policy for the dispatch scratch:
     * every scratch_window dispatches, capacities far above the
     * window's peak batch size are released so a one-off burst does
     * not pin its allocation for the process lifetime. Empty and
     * strict-rejected dispatches count as size-0 uses of the scratch
     * (they advance the window), so a burst followed by a quiet
     * stream of them still releases the burst's allocation.
     */
    void maybeShrinkScratch(std::size_t n);

    /**
     * First-touch lane build: group ops 0..n-1 by routes_[i].vault
     * into laneOps_/laneVault_ (lane order = order of first
     * appearance, deterministic) and reset the vault->lane table.
     * Returns the lane count. Shared by dispatchBatch and
     * dispatchAsync so both walk identical lanes.
     */
    std::uint32_t buildLanes(std::size_t n);

    /**
     * The accounting half of batched op @p i on lane @p l: remote
     * co-operand transfer (deduped per lane by @p fetched, drop/
     * retransmit and checksum fault hooks behind the faults_ gate),
     * injected lane stalls, the op's cached charges, and the result
     * checksum verify -- charged to modeled thread @p lane_tid of
     * @p wctx. Shared by the barriered worker charge path, the
     * permanent-failure recovery replay, and the async window's
     * virtual-time accounting, so all three bill one rule.
     */
    void chargeLaneOp(sim::SimContext &wctx, sim::ThreadId lane_tid,
                      std::unordered_set<SetId> &fetched,
                      std::uint32_t l, std::uint32_t i,
                      std::uint64_t dispatch_idx);

    // --- Async dispatch window (dispatchAsync) ------------------------

    /**
     * Bind-or-drain: an active window belongs to exactly one
     * (ctx, tid); any other context/thread arriving at the SCU
     * drains it first (charging the bound thread).
     */
    void ensureWindowContext(sim::SimContext &ctx, sim::ThreadId tid);

    /**
     * WAR/WAW edge from a serial mutation (insert/remove/destroy) of
     * @p id: stall to max(pending def, last pending read) of @p id.
     */
    void syncWrite(sim::SimContext &ctx, sim::ThreadId tid, SetId id);

    /** Virtual now: the bound thread's cycles past the window base. */
    mem::Cycles nowV() const
    {
        return windowCtx_->threadCycles(windowTid_) - windowBase_;
    }

    // --- Pure Section 8.3 cost predictors (no side effects) -----------

    mem::Cycles pumCost(std::uint64_t n_bits,
                        std::uint32_t row_ops) const;
    mem::Cycles streamCost(std::uint64_t max_elems) const;
    /** DB word streams are priced at 8 bytes per word. */
    mem::Cycles streamDbWordsCost(std::uint64_t words) const;
    mem::Cycles randomCost(std::uint64_t probes) const;

    struct MixedPlan
    {
        Backend backend = Backend::PnmRandom;
        mem::Cycles cycles = 0;
    };

    /**
     * SA-vs-DB plan: bit-probe each of @p array_size elements, or
     * stream the bitvector past the array -- whichever the models
     * predict cheaper, with both plans priced in bytes.
     */
    MixedPlan mixedProbePlan(std::uint64_t array_size) const;

    /** Charge the SMB/SM lookup for @p id's metadata. */
    void chargeMetadata(sim::SimContext &ctx, sim::ThreadId tid, SetId id);

    /** Charge a PUM bulk op over @p n_bits, @p row_ops rows deep. */
    void chargePum(sim::SimContext &ctx, sim::ThreadId tid,
                   std::uint64_t n_bits, std::uint32_t row_ops);

    void chargePnmStream(sim::SimContext &ctx, sim::ThreadId tid,
                         std::uint64_t max_elems);

    void chargePnmRandom(sim::SimContext &ctx, sim::ThreadId tid,
                         std::uint64_t probes);

    /**
     * Charge a mixed SA-vs-DB operation over @p array_size elements:
     * the SCU picks bit-probing (independent random accesses) or
     * bitvector streaming, whichever the Section 8.3 models predict
     * to be cheaper.
     */
    void chargeMixedProbe(sim::SimContext &ctx, sim::ThreadId tid,
                          std::uint64_t array_size);

    void recordWork(sim::SimContext &ctx, const sets::OpWork &work);

    /** Record @p op into the attached trace, if any. */
    void
    traceOp(SisaOp op, SetId rd, SetId rs1,
            SetId rs2 = invalid_set)
    {
        if (trace_)
            trace_->record(op, rd, rs1, rs2);
    }

    /** The worker pool, created lazily on the first parallel batch. */
    VaultWorkerPool &pool();

    /**
     * Block in the scheduler until this query may dispatch. On a
     * cancellation verdict (deadline / shed / fault budget) the
     * dispatch must not run: the async window is cancel-drained --
     * its pending modeled completions are charged to (@p ctx, @p
     * tid) and priced in scu.cancel_drains / setops.cancelled_cycles
     * so abandoned work is never silently dropped -- and
     * QueryCancelledError unwinds to the session's finish(). Every
     * later gated dispatch of the cancelled query rethrows without
     * re-entering the scheduler.
     */
    void admitDispatch(sim::SimContext &ctx, sim::ThreadId tid);

    /**
     * Retire the async window on a cancellation: identical timing
     * settlement to drainWindow (the bound thread pays the pending
     * completions), but the charge is booked as cancellation cost.
     */
    void cancelWindow();

    /** Close the grant: report the dispatch's demand (see bindQuery). */
    void reportDispatch(const sim::SimContext &ctx);

    /** Accumulate shared-vault busy time into the pending demand. */
    void
    noteVaultBusy(std::uint32_t vault, mem::Cycles cycles)
    {
        if (sched_ && cycles)
            demand_.addLane(vault, cycles);
    }

    /** Effective host worker count for batched dispatch. */
    std::uint32_t batchWorkerCount() const;

    /**
     * Result footprint of @p outcome in bytes, as moved by the
     * cross-vault reduction tree (SA payloads at 4 B/element, DB
     * payloads at denseBytes(), scalars at 8 B).
     */
    std::uint64_t resultBytes(const OpOutcome &outcome) const;

    /** Footprint of operand @p id when fetched from a remote vault. */
    std::uint64_t operandBytes(SetId id) const;

    SetStore &store_;
    ScuConfig config_;
    /** Routing view of the installed policy (reads only). */
    std::shared_ptr<const PlacementPolicy> placement_;
    /**
     * Non-null iff placement_ is a DynamicPlacement (same object),
     * held non-const: the barrier hooks (observe/collectMigrations/
     * decayBarrier/forget) mutate observation state, and since the
     * placement.hpp const cleanup the type system says so.
     */
    std::shared_ptr<DynamicPlacement> dynamic_;
    /**
     * Result/migration overlay over the placement policy: adopted
     * intermediates pinned to the vault that produced them (policies
     * with placesResults()) and sets moved by dynamic re-placement.
     * Consulted by vaultOf before the policy; entries die with their
     * set (destroy) or the policy (setPlacement).
     */
    std::unordered_map<SetId, std::uint32_t> overlay_;
    std::vector<std::unique_ptr<mem::Cache>> smbs_;
    Backend lastBackend_ = Backend::None;
    InstructionTrace *trace_ = nullptr;
    /** Shared so the serving layer can pool K sessions' workers. */
    std::shared_ptr<VaultWorkerPool> pool_;
    // --- Serving attachment (all dead while sched_ is null) -----------
    QueryScheduler *sched_ = nullptr;
    sim::QueryId query_ = sim::no_query;
    /** Session ctx all-thread cycle total at the last report. */
    mem::Cycles schedBase_ = 0;
    /** Per-vault busy cycles accumulating toward the next report. */
    DispatchDemand demand_;
    /** Set once the scheduler cancelled the bound query. */
    bool cancelled_ = false;
    /** The cancellation verdict (valid while cancelled_). */
    QueryState cancelVerdict_ = QueryState::Running;
    /**
     * Non-null iff config_.faults.enabled -- the single gate every
     * fault hook sits behind, so a disabled injector costs one
     * pointer test on paths that already branch.
     */
    std::unique_ptr<FaultInjector> faults_;
    /** Vaults taken out of service by permanent failures. */
    QuarantineSet quarantine_;
    /** Monotonic dispatch sequence number (fault coordinates). */
    std::uint64_t dispatchCounter_ = 0;
    std::vector<std::uint32_t> failedVaults_;  ///< Recovery scratch.
    std::vector<std::uint32_t> recoveredOps_;  ///< Recovery scratch.

    // Scratch reused across dispatchBatch calls so a small batch does
    // not pay fresh allocations (instruction issue on one SCU is not
    // reentrant, like the SMB state above). Bounded by the shrink-to-
    // high-watermark policy in maybeShrinkScratch.
    std::vector<std::uint32_t> vaultLane_; ///< vault -> lane or ~0u.
    std::vector<std::uint32_t> laneVault_; ///< lane -> vault (reset list).
    std::vector<std::vector<std::uint32_t>> laneOps_;
    std::vector<std::uint32_t> laneSizes_; ///< lane -> op count.
    std::vector<OpOutcome> outcomes_;
    std::vector<OpRoute> routes_; ///< op -> routing decision.
    std::vector<std::uint64_t> laneResultBytes_;
    /** Balanced scheduler state: per-vault queued cycles ... */
    VaultLoads schedLoads_;
    /** ... op indices in LPT (descending cost) order ... */
    std::vector<std::uint32_t> schedOrder_;
    /** ... and (vault << 32 | operand) pairs already paid for. */
    std::unordered_set<std::uint64_t> schedFetched_;
    /**
     * Reverse index of schedFetched_ for the byte-harvesting pass:
     * operand -> vaults already paying its transfer this dispatch
     * (the candidate "rider" lanes for ops sharing the operand).
     */
    std::unordered_map<SetId, std::vector<std::uint32_t>>
        schedFetchedVaults_;
    /**
     * Per-lane (remote operand, bytes) transfers the workers charged
     * this dispatch, recorded only while a DynamicPlacement policy
     * is installed -- the barrier feeds them to the policy verbatim,
     * so heat can never drift from what was billed. Each lane is
     * written by exactly one worker.
     */
    std::vector<std::vector<std::pair<SetId, std::uint64_t>>>
        laneFetched_;
    std::size_t scratchPeak_ = 0;       ///< Max batch size this window.
    std::uint32_t scratchDispatches_ = 0;
    static constexpr std::uint32_t scratch_window = 32;

    // --- Async dispatch window state (all dead while windowCtx_ is
    // null; dispatchAsync opens the window lazily and drainWindow /
    // any foreign context / a barriered dispatch closes it). Modeled
    // time inside the window is VIRTUAL: cycles past windowBase_ on
    // the bound thread, so front-end charges, serial ops, and
    // migrations keep advancing "now" while lane clocks run ahead.
    sim::SimContext *windowCtx_ = nullptr; ///< Bound context or null.
    sim::ThreadId windowTid_ = 0;          ///< Bound modeled thread.
    mem::Cycles windowBase_ = 0;  ///< Bound thread cycles at open.
    /** Per-vault virtual lane clocks (busy-until, window lifetime). */
    std::vector<mem::Cycles> laneClockV_;
    mem::Cycles maxCompletionV_ = 0; ///< Latest pending completion.
    /** Reduction-tree serialization point (one tree at a time). */
    mem::Cycles reduceEndV_ = 0;
    /** RAW/WAR scoreboard over unretired defs and payload reads. */
    analysis::DependencyWindow deps_;
    /** In-flight (ticket, completion) in dispatch order (the ROB). */
    std::deque<std::pair<std::uint64_t, mem::Cycles>> pendingTickets_;
    /** Dispatched-but-uncollected results (survive the drain). */
    std::unordered_map<std::uint64_t, BatchResult> pendingResults_;
    std::uint64_t nextTicket_ = 0;
};

} // namespace sisa::isa

#endif // SISA_SISA_SCU_HPP
