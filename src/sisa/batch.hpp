/**
 * @file
 * Batched SISA instruction dispatch (the SISA-PNM throughput model of
 * Sections 5-6). A BatchRequest carries N independent binary set
 * operations that the SCU decodes ONCE and executes concurrently
 * across its vaults: each operation is routed to an execution vault
 * by ScuConfig.routing (its primary operand's vault by default, the
 * bigger operand's vault under MinBytes, or the vault the
 * makespan-driven LPT batch scheduler picks under Balanced),
 * operations mapped to the same vault serialize, and the batch's
 * simulated cost is the makespan of the slowest vault -- exactly the
 * cross-vault load-balance behaviour the paper's evaluation studies. Engines expose this through
 * SetEngine::executeBatch (core/set_engine.hpp); batched and serial
 * dispatch are bit-identical in their functional results and in their
 * total setops.* work counters, only the cycle model differs.
 */

#ifndef SISA_SISA_BATCH_HPP
#define SISA_SISA_BATCH_HPP

#include <cstdint>
#include <vector>

#include "sisa/isa.hpp"

namespace sisa::isa {

/** Which binary set operation a batch entry performs. */
enum class BatchOpKind : std::uint8_t
{
    Intersect,     ///< A cap B -> new set.
    Union,         ///< A cup B -> new set.
    Difference,    ///< A setminus B -> new set.
    IntersectCard, ///< |A cap B| (no materialization).
    UnionCard,     ///< |A cup B| (no materialization).
};

/**
 * One operation inside a batch.
 *
 * HAZARD CONTRACT -- what dispatchBatch assumes about independence.
 * The N operations of one BatchRequest issue concurrently with NO
 * ordering among them; the SCU routes them to vault lanes and only
 * lane membership serializes. A batch is well-formed iff:
 *
 *  1. Every operand id (`a`, and `b` where the kind reads two
 *     sources) names a set that is LIVE when the batch is dispatched.
 *     No operand may be the result of another op in the same batch --
 *     result ids are allocated at adoption, after every lane retired,
 *     so such a forward reference cannot even be expressed.
 *  2. No op in the batch releases, mutates, or converts a set another
 *     op in the same batch reads. Batch ops are read-only over their
 *     operands (intersect/union/difference/cardinalities), so this
 *     holds by construction today; it becomes load-bearing the moment
 *     a mutating kind is added.
 *  3. Operand ids resolve to vaults within config().pim.vaults under
 *     the installed placement policy.
 *
 * Violations are undefined behaviour of the simulation model (NOT of
 * the host process -- the store bounds-checks). ScuConfig.analyze
 * verifies 1-3 statically before execution (sisa/analysis.hpp):
 * Warn reports, Strict rejects the dispatch with AnalysisError.
 * Issuing the same scalar op twice in one batch is legal but wastes
 * a lane; the analyzer flags it as an INFO-grade RedundantOp.
 *
 * CROSS-BATCH HAZARDS -- what the async window adds on top. With
 * ScuConfig.asyncDepth > 0 the SCU keeps up to asyncDepth dispatches
 * in flight (Scu::dispatchAsync), so batches may OVERLAP in modeled
 * time. The in-order front end preserves the contract: every dispatch
 * still executes functionally, adopts result ids, records its trace,
 * and bumps its counters in program order at dispatch time, and the
 * window's scoreboard (analysis::DependencyWindow) joins each new
 * batch's lifted Program against the unretired defs so that
 *
 *  - RAW: an op reading a pending result cannot start before the
 *    producing batch's modeled completion;
 *  - WAR: a serial mutation (insert/remove/destroy) of a set that a
 *    pending op reads stalls to the last modeled read of that set;
 *  - WAW: destroy forgets the id from the scoreboard, so a recycled
 *    id starts with a clean dependency slate.
 *
 * Because the functional front end is in-order, `analyze=strict`
 * under overlap verifies exactly what it verifies in barriered mode:
 * each batch is checked (and rejected, with the window intact)
 * against the store state produced by every earlier dispatch and
 * serial op, before its ops enter the window. Overlap moves cycle
 * charges only; results, ids, traces, and functional counters are
 * bit-identical to asyncDepth = 0.
 *
 * CROSS-QUERY NON-INTERFERENCE -- what multi-tenant serving adds on
 * top. Under a QueryScheduler (core/query_session.hpp) several
 * queries dispatch batches against shared modeled vaults, but every
 * session owns its engine and SetStore, so no batch can ever name a
 * co-tenant's set: the hazard rules above remain strictly per query,
 * and the scoreboard never sees a cross-query edge. Admission
 * scheduling moves MODELED TIME only -- grant order changes when a
 * query's lanes land on the shared vault clocks, never what its ops
 * compute -- so a query's results, result ids, fault coordinates,
 * and functional counters are bit-identical solo vs co-tenant (the
 * `serving` CTest label enforces this across workers x routing x
 * placement x faults x async).
 *
 * The guarantee survives the query lifecycle (sisa/serving.hpp):
 * deadlines, admission control, and overload shedding cancel a query
 * only BETWEEN its dispatches (QueryCancelledError out of the gated
 * admit), and a cancellation drains only the victim's own async
 * window, charging the drain to the victim (`scu.cancel_drains`,
 * `setops.cancelled_cycles`). So under any mix of deadlines,
 * arrivals, shedding, and fault budgets, every query that COMPLETES
 * still reports results, ids, and setops.* totals bit-identical to
 * its solo run, and the lifecycle verdicts themselves (TimedOut /
 * Shed / Aborted, and the lifecycle log recording them) are pure
 * functions of modeled time -- independent of host worker count or
 * wall-clock timing.
 *
 * Operand `a` is the PRIMARY operand: under Routing::Primary the SCU
 * routes the op to `a`'s vault (under Routing::MinBytes it runs
 * where the bigger operand lives, with ties keeping `a`'s vault),
 * and ops on the same vault serialize. When a loop batches many ops
 * against one shared set, pass the VARYING set as `a` (the symmetric
 * ops -- intersect*, union* -- don't care about order) so the batch
 * spreads across vaults instead of piling onto one. Routing::
 * Balanced makes that guidance soft -- its scheduler weighs both
 * operands' vaults (and rider lanes already holding the shared
 * co-operand) against per-vault load -- but ties still favor `a`,
 * so the convention remains worth following.
 */
struct BatchOp
{
    BatchOpKind kind = BatchOpKind::Intersect;
    SetId a = invalid_set;
    SetId b = invalid_set;
    /** Variant knob (merge/gallop forcing), as in the serial issue. */
    SisaOp variant = SisaOp::IntersectAuto;
};

/** N set operations issued to the SCU as one dispatch. */
struct BatchRequest
{
    std::vector<BatchOp> ops;

    std::size_t size() const { return ops.size(); }
    bool empty() const { return ops.empty(); }
    void clear() { ops.clear(); }
    void reserve(std::size_t n) { ops.reserve(n); }

    void
    intersect(SetId a, SetId b, SisaOp variant = SisaOp::IntersectAuto)
    {
        ops.push_back({BatchOpKind::Intersect, a, b, variant});
    }

    void
    setUnion(SetId a, SetId b, SisaOp variant = SisaOp::UnionAuto)
    {
        ops.push_back({BatchOpKind::Union, a, b, variant});
    }

    void
    difference(SetId a, SetId b,
               SisaOp variant = SisaOp::DifferenceAuto)
    {
        ops.push_back({BatchOpKind::Difference, a, b, variant});
    }

    void
    intersectCard(SetId a, SetId b,
                  SisaOp variant = SisaOp::IntersectAuto)
    {
        ops.push_back({BatchOpKind::IntersectCard, a, b, variant});
    }

    void
    unionCard(SetId a, SetId b)
    {
        ops.push_back({BatchOpKind::UnionCard, a, b,
                       SisaOp::IntersectAuto});
    }
};

/** Per-operation outcome of a batch dispatch, in request order. */
struct BatchEntry
{
    /** Result set id for materializing ops; invalid_set otherwise. */
    SetId set = invalid_set;
    /**
     * Scalar result: the cardinality for IntersectCard/UnionCard, and
     * (for convenience) the result cardinality of materializing ops.
     */
    std::uint64_t value = 0;
};

/**
 * Fault-recovery accounting of one dispatch (sisa/faults.hpp). All
 * zero when the injector is disabled or nothing fired; recoverable
 * faults never change the functional entries, only this summary and
 * the cycle/counter charges.
 */
struct BatchFaultSummary
{
    /** Transient re-executions plus transfer retransmissions. */
    std::uint64_t retries = 0;
    /** Injected lane-stall events. */
    std::uint64_t laneStalls = 0;
    /** Vaults newly quarantined during this dispatch. */
    std::uint32_t quarantinedVaults = 0;
    /** Retransmitted plus evacuated bytes (setops.recovery_bytes). */
    std::uint64_t recoveryBytes = 0;
};

/** Results of one batch dispatch, entry i matching request op i. */
struct BatchResult
{
    std::vector<BatchEntry> entries;
    BatchFaultSummary faults;

    std::size_t size() const { return entries.size(); }
};

/**
 * Ticket for one in-flight async dispatch (Scu::dispatchAsync /
 * SetEngine::executeBatchAsync). The functional BatchResult is
 * complete the moment the ticket is issued -- the front end executes
 * in order -- so collectBatch() forwards it without charging cycles
 * (ROB-style value forwarding); modeled time settles when the batch
 * retires (window overflow, a dependent read, or drainBatches).
 * Tickets are single-use: collecting one invalidates it.
 */
struct BatchHandle
{
    static constexpr std::uint64_t invalid_ticket = UINT64_MAX;

    std::uint64_t ticket = invalid_ticket;

    bool valid() const { return ticket != invalid_ticket; }
};

} // namespace sisa::isa

#endif // SISA_SISA_BATCH_HPP
