#include "sisa/encoding.hpp"

#include "support/logging.hpp"

namespace sisa::isa {

std::string_view
sisaOpName(SisaOp op)
{
    switch (op) {
      case SisaOp::IntersectMerge: return "sisa.and.mg";
      case SisaOp::IntersectGallop: return "sisa.and.gl";
      case SisaOp::IntersectAuto: return "sisa.and";
      case SisaOp::IntersectSaDb: return "sisa.and.sd";
      case SisaOp::IntersectDbDb: return "sisa.and.dd";
      case SisaOp::InsertElement: return "sisa.ins";
      case SisaOp::RemoveElement: return "sisa.rem";
      case SisaOp::UnionMerge: return "sisa.or.mg";
      case SisaOp::UnionGallop: return "sisa.or.gl";
      case SisaOp::UnionAuto: return "sisa.or";
      case SisaOp::DifferenceMerge: return "sisa.diff.mg";
      case SisaOp::DifferenceGallop: return "sisa.diff.gl";
      case SisaOp::DifferenceAuto: return "sisa.diff";
      case SisaOp::IntersectCard: return "sisa.andc";
      case SisaOp::UnionCard: return "sisa.orc";
      case SisaOp::Cardinality: return "sisa.card";
      case SisaOp::Member: return "sisa.mem";
      case SisaOp::CreateSet: return "sisa.new";
      case SisaOp::DeleteSet: return "sisa.del";
      case SisaOp::CloneSet: return "sisa.clone";
      case SisaOp::ConvertRepr: return "sisa.conv";
      case SisaOp::IntersectMany: return "sisa.andn";
    }
    return "sisa.???";
}

std::uint32_t
encode(const SisaInst &inst)
{
    sisa_assert(inst.rd < 32 && inst.rs1 < 32 && inst.rs2 < 32,
                "register fields are 5 bits wide");
    const auto funct7 = static_cast<std::uint32_t>(inst.op);
    sisa_assert(funct7 < 128, "funct7 is 7 bits wide");

    std::uint32_t word = sisa_opcode;            // bits [6..0]
    word |= std::uint32_t{inst.rd} << 7;         // bits [11..7]
    word |= std::uint32_t{inst.xs2} << 12;       // bit 12
    word |= std::uint32_t{inst.xs1} << 13;       // bit 13
    word |= std::uint32_t{inst.xd} << 14;        // bit 14
    word |= std::uint32_t{inst.rs1} << 15;       // bits [19..15]
    word |= std::uint32_t{inst.rs2} << 20;       // bits [24..20]
    word |= funct7 << 25;                        // bits [31..25]
    return word;
}

std::optional<SisaInst>
decode(std::uint32_t word)
{
    if (!isSisaWord(word))
        return std::nullopt;
    const std::uint32_t funct7 = word >> 25;
    if (funct7 >= num_sisa_ops)
        return std::nullopt;

    SisaInst inst;
    inst.op = static_cast<SisaOp>(funct7);
    inst.rd = (word >> 7) & 0x1f;
    inst.xs2 = (word >> 12) & 1;
    inst.xs1 = (word >> 13) & 1;
    inst.xd = (word >> 14) & 1;
    inst.rs1 = (word >> 15) & 0x1f;
    inst.rs2 = (word >> 20) & 0x1f;
    return inst;
}

} // namespace sisa::isa
