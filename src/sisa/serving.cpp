#include "sisa/serving.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace sisa::isa {

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
    case SchedPolicy::Fcfs:
        return "fcfs";
    case SchedPolicy::Credit:
        return "credit";
    case SchedPolicy::Priority:
        return "priority";
    }
    return "?";
}

std::optional<SchedPolicy>
parseSchedPolicy(std::string_view name)
{
    if (name == "fcfs")
        return SchedPolicy::Fcfs;
    if (name == "credit")
        return SchedPolicy::Credit;
    if (name == "priority")
        return SchedPolicy::Priority;
    return std::nullopt;
}

const char *
queryStateName(QueryState state)
{
    switch (state) {
    case QueryState::Pending:
        return "pending";
    case QueryState::Admitted:
        return "admitted";
    case QueryState::Running:
        return "running";
    case QueryState::Completed:
        return "completed";
    case QueryState::TimedOut:
        return "timed-out";
    case QueryState::Shed:
        return "shed";
    case QueryState::Aborted:
        return "aborted";
    }
    return "?";
}

bool
queryStateTerminal(QueryState state)
{
    return state == QueryState::Completed ||
           state == QueryState::TimedOut ||
           state == QueryState::Shed || state == QueryState::Aborted;
}

const char *
shedPolicyName(ShedPolicy policy)
{
    switch (policy) {
    case ShedPolicy::None:
        return "none";
    case ShedPolicy::Reject:
        return "reject";
    case ShedPolicy::Oldest:
        return "oldest";
    case ShedPolicy::Edf:
        return "edf";
    }
    return "?";
}

std::optional<ShedPolicy>
parseShedPolicy(std::string_view name)
{
    if (name == "none")
        return ShedPolicy::None;
    if (name == "reject")
        return ShedPolicy::Reject;
    if (name == "oldest")
        return ShedPolicy::Oldest;
    if (name == "edf")
        return ShedPolicy::Edf;
    return std::nullopt;
}

// --- ServingModel ----------------------------------------------------------

ServingModel::ServingModel(SchedPolicy policy, mem::Cycles quantum)
    : policy_(policy), quantum_(quantum)
{
    sisa_assert(quantum > 0, "credit quantum must be positive");
}

void
ServingModel::setOverload(ShedPolicy shed, std::size_t capacity,
                          std::uint32_t vaultWidth)
{
    sisa_assert(admitted_.empty() && lifecycle_.empty(),
                "setOverload() after the first decision");
    shed_ = shed;
    capacity_ = capacity;
    vaultWidth_ = vaultWidth;
}

sim::QueryId
ServingModel::enroll(const AdmissionSpec &spec)
{
    const auto id = static_cast<sim::QueryId>(queries_.size());
    Query q;
    q.spec = spec;
    q.issue = spec.arrival; // Own timeline starts at arrival.
    q.credit = static_cast<std::int64_t>(quantum_);
    queries_.push_back(q);
    return id;
}

bool
ServingModel::creditEligible(
    const std::vector<sim::QueryId> &waiting) const
{
    return std::any_of(waiting.begin(), waiting.end(),
                       [&](sim::QueryId q) {
                           return queries_[q].credit > 0;
                       });
}

mem::Cycles
ServingModel::readyPoint(const Query &q) const
{
    return std::max(q.spec.arrival, q.issue);
}

mem::Cycles
ServingModel::vaultFloor() const
{
    if (vaultWidth_ == 0)
        return 0;
    mem::Cycles floor = ~mem::Cycles{0};
    for (std::uint32_t v = 0; v < vaultWidth_; ++v)
        floor = std::min(floor, vaultClock(v));
    return floor;
}

std::size_t
ServingModel::liveAdmitted() const
{
    std::size_t live = 0;
    for (const Query &q : queries_) {
        if (q.state == QueryState::Admitted ||
            q.state == QueryState::Running)
            ++live;
    }
    return live;
}

void
ServingModel::transition(sim::QueryId query, QueryState state)
{
    queries_[query].state = state;
    lifecycle_.push_back({query, state});
}

std::optional<ServingModel::Decision>
ServingModel::admitArrival(sim::QueryId query)
{
    const bool full = shed_ != ShedPolicy::None && capacity_ != 0 &&
                      liveAdmitted() >= capacity_;
    if (!full) {
        transition(query, QueryState::Admitted);
        return std::nullopt;
    }
    // Pick the victim that makes room (or the newcomer itself).
    sim::QueryId victim = query;
    switch (shed_) {
    case ShedPolicy::Reject:
        break; // Reject-on-full: the newcomer is the victim.
    case ShedPolicy::Oldest:
        // Drop the oldest query that has not started running; keep
        // the newcomer out only if everyone queued already ran.
        for (sim::QueryId q = 0; q < queries_.size(); ++q) {
            if (queries_[q].state == QueryState::Admitted) {
                victim = q;
                break;
            }
        }
        break;
    case ShedPolicy::Edf: {
        // Drop the latest deadline (no deadline sorts last; ties
        // shed the newer enrollment).
        for (sim::QueryId q = 0; q < queries_.size(); ++q) {
            if (queries_[q].state != QueryState::Admitted)
                continue;
            if (queries_[q].spec.deadline >=
                queries_[victim].spec.deadline)
                victim = q;
        }
        break;
    }
    case ShedPolicy::None:
        break; // Unreachable: !full above.
    }
    if (victim != query)
        transition(query, QueryState::Admitted);
    queries_[victim].wake = QueryState::Shed;
    transition(victim, QueryState::Shed);
    return Decision{victim, QueryState::Shed};
}

ServingModel::Decision
ServingModel::decide(const std::vector<sim::QueryId> &waiting)
{
    sisa_assert(!waiting.empty(), "decide() with nobody parked");

    // 1. Warp the admission clock to the earliest ready point so the
    //    eligible set is never empty: virtual time, never host time.
    mem::Cycles earliest = ~mem::Cycles{0};
    for (const sim::QueryId q : waiting)
        earliest = std::min(earliest, readyPoint(queries_[q]));
    nowV_ = std::max(nowV_, earliest);

    // 2. Arrivals in (arrival, id) order through the bounded queue.
    //    A shed victim ends the sweep: its wake occupies the slot,
    //    and remaining arrivals re-enter at the next boundary.
    for (;;) {
        bool found = false;
        sim::QueryId next = 0;
        for (const sim::QueryId q : waiting) {
            const Query &cand = queries_[q];
            if (cand.state != QueryState::Pending ||
                cand.spec.arrival > nowV_)
                continue;
            if (!found ||
                cand.spec.arrival < queries_[next].spec.arrival) {
                next = q;
                found = true;
            }
        }
        if (!found)
            break;
        if (const auto shed = admitArrival(next))
            return *shed;
    }

    for (const sim::QueryId q : waiting) {
        Query &cand = queries_[q];
        if (cand.state != QueryState::Admitted &&
            cand.state != QueryState::Running)
            continue;
        // 3. Deadline enforcement: the query's own virtual position
        //    (issue point / vault tail) passed its deadline -- no
        //    later dispatch can complete it in time.
        if (cand.spec.deadline != no_deadline &&
            std::max(cand.issue, cand.tail) > cand.spec.deadline) {
            cand.wake = QueryState::TimedOut;
            transition(q, QueryState::TimedOut);
            return {q, QueryState::TimedOut};
        }
        // 4. Fault budget: a fault-storm tenant is aborted instead
        //    of burning shared vault time on endless recovery.
        if (cand.faultSpend > cand.spec.faultBudget) {
            cand.wake = QueryState::Aborted;
            transition(q, QueryState::Aborted);
            return {q, QueryState::Aborted};
        }
        // 5. EDF reachability: shed a not-yet-running query whose
        //    deadline is provably unreachable -- even dispatching at
        //    its ready point onto the earliest-free vault lane, the
        //    clock is already past the deadline.
        if (shed_ == ShedPolicy::Edf &&
            cand.state == QueryState::Admitted &&
            cand.spec.deadline != no_deadline &&
            std::max(readyPoint(cand), vaultFloor()) >
                cand.spec.deadline) {
            cand.wake = QueryState::Shed;
            transition(q, QueryState::Shed);
            return {q, QueryState::Shed};
        }
    }

    // 6. Grant: the policy picks among the arrived queries.
    eligibleScratch_.clear();
    for (const sim::QueryId q : waiting) {
        const Query &cand = queries_[q];
        if ((cand.state == QueryState::Admitted ||
             cand.state == QueryState::Running) &&
            cand.spec.arrival <= nowV_)
            eligibleScratch_.push_back(q);
    }
    sisa_assert(!eligibleScratch_.empty(),
                "admission clock warp left nobody eligible");
    const sim::QueryId winner = pick(eligibleScratch_);
    if (queries_[winner].state == QueryState::Admitted)
        transition(winner, QueryState::Running);
    return {winner, QueryState::Running};
}

sim::QueryId
ServingModel::pick(const std::vector<sim::QueryId> &waiting)
{
    sisa_assert(!waiting.empty(), "pick() from an empty waiting set");
    sim::QueryId winner = waiting.front();
    if (shed_ == ShedPolicy::Edf) {
        // Earliest deadline first (no deadline sorts last; ties
        // resolve by enrollment order). Overrides the base policy:
        // EDF admission ordering is what makes the shed decisions
        // consistent with the grant order.
        for (const sim::QueryId q : waiting) {
            if (queries_[q].spec.deadline <
                queries_[winner].spec.deadline)
                winner = q;
        }
        admitted_.push_back(winner);
        return winner;
    }
    switch (policy_) {
    case SchedPolicy::Fcfs:
        // Arrival order IS id order; waiting is ascending.
        winner = waiting.front();
        break;
    case SchedPolicy::Priority:
        // Highest priority wins; ties resolve by arrival. Evaluated
        // at every dispatch boundary, so a higher-priority query
        // preempts a long-running one between its batches.
        for (const sim::QueryId q : waiting) {
            if (queries_[q].spec.priority >
                queries_[winner].spec.priority)
                winner = q;
        }
        break;
    case SchedPolicy::Credit: {
        // Deficit round-robin: the cursor stays on a query while it
        // retains credit; exhausting it passes the turn. When no
        // waiting query has credit left, every live query refills by
        // the quantum (repeatedly, if a huge dispatch dug a deep
        // deficit) -- so long batches borrow turns they later repay --
        // and the turn passes to the NEXT query in round-robin order,
        // not back to the one whose exhaustion forced the refill.
        const auto n = static_cast<sim::QueryId>(queries_.size());
        sim::QueryId scan = cursor_;
        if (!creditEligible(waiting)) {
            do {
                for (Query &q : queries_) {
                    if (!q.done)
                        q.credit +=
                            static_cast<std::int64_t>(quantum_);
                }
            } while (!creditEligible(waiting));
            scan = (cursor_ + 1) % n;
        }
        for (sim::QueryId off = 0; off < n; ++off) {
            const sim::QueryId q = (scan + off) % n;
            if (queries_[q].credit > 0 &&
                std::binary_search(waiting.begin(), waiting.end(), q)) {
                winner = q;
                break;
            }
        }
        cursor_ = winner;
        break;
    }
    }
    admitted_.push_back(winner);
    return winner;
}

void
ServingModel::charge(sim::QueryId query, const DispatchDemand &demand)
{
    Query &q = queries_[query];
    sisa_assert(!q.done, "charge() after finish()");
    const mem::Cycles start = q.issue;
    q.issue += demand.own;
    q.own += demand.own;
    q.faultSpend += demand.faultEvents;
    if (policy_ == SchedPolicy::Credit)
        q.credit -= static_cast<std::int64_t>(demand.own);
    for (const auto &[vault, cycles] : demand.lanes) {
        if (vault >= vaultClock_.size())
            vaultClock_.resize(vault + 1, 0);
        const mem::Cycles begin = std::max(vaultClock_[vault], start);
        vaultClock_[vault] = begin + cycles;
        q.tail = std::max(q.tail, vaultClock_[vault]);
    }
}

void
ServingModel::finish(sim::QueryId query)
{
    Query &q = queries_[query];
    sisa_assert(!q.done, "finish() twice");
    q.done = true;
    q.completionAt = std::max(q.issue, q.tail);
    // A cancellation wake already logged its terminal verdict; a
    // normal retirement completes here.
    if (q.wake == QueryState::Running)
        transition(query, QueryState::Completed);
}

bool
ServingModel::finished(sim::QueryId query) const
{
    return queries_[query].done;
}

QueryState
ServingModel::state(sim::QueryId query) const
{
    return queries_[query].state;
}

QueryState
ServingModel::grantVerdict(sim::QueryId query) const
{
    return queries_[query].wake;
}

mem::Cycles
ServingModel::completion(sim::QueryId query) const
{
    const Query &q = queries_[query];
    sisa_assert(q.done, "completion() before finish()");
    return q.completionAt;
}

mem::Cycles
ServingModel::ownCycles(sim::QueryId query) const
{
    return queries_[query].own;
}

mem::Cycles
ServingModel::arrival(sim::QueryId query) const
{
    return queries_[query].spec.arrival;
}

mem::Cycles
ServingModel::deadline(sim::QueryId query) const
{
    return queries_[query].spec.deadline;
}

std::uint64_t
ServingModel::faultSpend(sim::QueryId query) const
{
    return queries_[query].faultSpend;
}

bool
ServingModel::deadlineMet(sim::QueryId query) const
{
    const Query &q = queries_[query];
    sisa_assert(q.done, "deadlineMet() before finish()");
    return q.state == QueryState::Completed &&
           (q.spec.deadline == no_deadline ||
            q.completionAt <= q.spec.deadline);
}

std::int64_t
ServingModel::credit(sim::QueryId query) const
{
    return queries_[query].credit;
}

mem::Cycles
ServingModel::vaultClock(std::uint32_t vault) const
{
    return vault < vaultClock_.size() ? vaultClock_[vault] : 0;
}

// --- QueryScheduler --------------------------------------------------------

QueryScheduler::QueryScheduler(SchedPolicy policy, mem::Cycles quantum)
    : model_(policy, quantum)
{
}

void
QueryScheduler::setOverload(ShedPolicy shed, std::size_t capacity,
                            std::uint32_t vaultWidth)
{
    const std::scoped_lock lock(mu_);
    model_.setOverload(shed, capacity, vaultWidth);
}

sim::QueryId
QueryScheduler::enroll(const AdmissionSpec &spec)
{
    const std::scoped_lock lock(mu_);
    const sim::QueryId id = model_.enroll(spec);
    states_.push_back(State::Running);
    ++unfinished_;
    return id;
}

void
QueryScheduler::maybeGrantLocked()
{
    if (grantOutstanding_ || waiting_ == 0 || waiting_ < unfinished_)
        return;
    // Every unfinished query is parked at admit(): the decision is a
    // pure function of policy state, independent of host timing.
    waitingScratch_.clear();
    for (sim::QueryId q = 0; q < states_.size(); ++q) {
        if (!model_.finished(q) && states_[q] == State::Waiting)
            waitingScratch_.push_back(q);
    }
    const ServingModel::Decision decision =
        model_.decide(waitingScratch_);
    states_[decision.query] = State::Granted;
    grantOutstanding_ = true;
    cv_.notify_all();
}

QueryState
QueryScheduler::admit(sim::QueryId query)
{
    std::unique_lock lock(mu_);
    sisa_assert(states_[query] == State::Running,
                "admit() while already admitted");
    states_[query] = State::Waiting;
    ++waiting_;
    maybeGrantLocked();
    cv_.wait(lock, [&] { return states_[query] == State::Granted; });
    --waiting_;
    // The slot stays held either way: a grantee until report(), a
    // cancellation wake until leave() -- so cancelled teardown never
    // overlaps a co-tenant's dispatch on the shared pool.
    return model_.grantVerdict(query);
}

void
QueryScheduler::report(sim::QueryId query, DispatchDemand demand)
{
    const std::scoped_lock lock(mu_);
    sisa_assert(states_[query] == State::Granted,
                "report() without a grant");
    model_.charge(query, demand);
    states_[query] = State::Running;
    grantOutstanding_ = false;
    maybeGrantLocked();
}

mem::Cycles
QueryScheduler::ownCycles(sim::QueryId query) const
{
    const std::scoped_lock lock(mu_);
    return model_.ownCycles(query);
}

void
QueryScheduler::leave(sim::QueryId query, DispatchDemand demand)
{
    const std::scoped_lock lock(mu_);
    sisa_assert(!model_.finished(query), "leave() twice");
    model_.charge(query, demand);
    model_.finish(query);
    --unfinished_;
    // A departing grant-holder (normal or cancelled) releases the
    // slot; a departing bystander may complete the "all parked"
    // condition.
    if (states_[query] == State::Granted)
        grantOutstanding_ = false;
    states_[query] = State::Running;
    maybeGrantLocked();
}

} // namespace sisa::isa
