#include "sisa/serving.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace sisa::isa {

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
    case SchedPolicy::Fcfs:
        return "fcfs";
    case SchedPolicy::Credit:
        return "credit";
    case SchedPolicy::Priority:
        return "priority";
    }
    return "?";
}

std::optional<SchedPolicy>
parseSchedPolicy(std::string_view name)
{
    if (name == "fcfs")
        return SchedPolicy::Fcfs;
    if (name == "credit")
        return SchedPolicy::Credit;
    if (name == "priority")
        return SchedPolicy::Priority;
    return std::nullopt;
}

// --- ServingModel ----------------------------------------------------------

ServingModel::ServingModel(SchedPolicy policy, mem::Cycles quantum)
    : policy_(policy), quantum_(quantum)
{
    sisa_assert(quantum > 0, "credit quantum must be positive");
}

sim::QueryId
ServingModel::enroll(std::uint32_t priority)
{
    const auto id = static_cast<sim::QueryId>(queries_.size());
    Query q;
    q.priority = priority;
    q.credit = static_cast<std::int64_t>(quantum_);
    queries_.push_back(q);
    return id;
}

bool
ServingModel::creditEligible(
    const std::vector<sim::QueryId> &waiting) const
{
    return std::any_of(waiting.begin(), waiting.end(),
                       [&](sim::QueryId q) {
                           return queries_[q].credit > 0;
                       });
}

sim::QueryId
ServingModel::pick(const std::vector<sim::QueryId> &waiting)
{
    sisa_assert(!waiting.empty(), "pick() from an empty waiting set");
    sim::QueryId winner = waiting.front();
    switch (policy_) {
    case SchedPolicy::Fcfs:
        // Arrival order IS id order; waiting is ascending.
        winner = waiting.front();
        break;
    case SchedPolicy::Priority:
        // Highest priority wins; ties resolve by arrival. Evaluated
        // at every dispatch boundary, so a higher-priority query
        // preempts a long-running one between its batches.
        for (const sim::QueryId q : waiting) {
            if (queries_[q].priority > queries_[winner].priority)
                winner = q;
        }
        break;
    case SchedPolicy::Credit: {
        // Deficit round-robin: the cursor stays on a query while it
        // retains credit; exhausting it passes the turn. When no
        // waiting query has credit left, every live query refills by
        // the quantum (repeatedly, if a huge dispatch dug a deep
        // deficit) -- so long batches borrow turns they later repay --
        // and the turn passes to the NEXT query in round-robin order,
        // not back to the one whose exhaustion forced the refill.
        const auto n = static_cast<sim::QueryId>(queries_.size());
        sim::QueryId scan = cursor_;
        if (!creditEligible(waiting)) {
            do {
                for (Query &q : queries_) {
                    if (!q.done)
                        q.credit +=
                            static_cast<std::int64_t>(quantum_);
                }
            } while (!creditEligible(waiting));
            scan = (cursor_ + 1) % n;
        }
        for (sim::QueryId off = 0; off < n; ++off) {
            const sim::QueryId q = (scan + off) % n;
            if (queries_[q].credit > 0 &&
                std::binary_search(waiting.begin(), waiting.end(), q)) {
                winner = q;
                break;
            }
        }
        cursor_ = winner;
        break;
    }
    }
    admitted_.push_back(winner);
    return winner;
}

void
ServingModel::charge(sim::QueryId query, const DispatchDemand &demand)
{
    Query &q = queries_[query];
    sisa_assert(!q.done, "charge() after finish()");
    const mem::Cycles start = q.issue;
    q.issue += demand.own;
    q.own += demand.own;
    if (policy_ == SchedPolicy::Credit)
        q.credit -= static_cast<std::int64_t>(demand.own);
    for (const auto &[vault, cycles] : demand.lanes) {
        if (vault >= vaultClock_.size())
            vaultClock_.resize(vault + 1, 0);
        const mem::Cycles begin = std::max(vaultClock_[vault], start);
        vaultClock_[vault] = begin + cycles;
        q.tail = std::max(q.tail, vaultClock_[vault]);
    }
}

void
ServingModel::finish(sim::QueryId query)
{
    Query &q = queries_[query];
    sisa_assert(!q.done, "finish() twice");
    q.done = true;
    q.completionAt = std::max(q.issue, q.tail);
}

bool
ServingModel::finished(sim::QueryId query) const
{
    return queries_[query].done;
}

mem::Cycles
ServingModel::completion(sim::QueryId query) const
{
    const Query &q = queries_[query];
    sisa_assert(q.done, "completion() before finish()");
    return q.completionAt;
}

mem::Cycles
ServingModel::ownCycles(sim::QueryId query) const
{
    return queries_[query].own;
}

std::int64_t
ServingModel::credit(sim::QueryId query) const
{
    return queries_[query].credit;
}

mem::Cycles
ServingModel::vaultClock(std::uint32_t vault) const
{
    return vault < vaultClock_.size() ? vaultClock_[vault] : 0;
}

// --- QueryScheduler --------------------------------------------------------

QueryScheduler::QueryScheduler(SchedPolicy policy, mem::Cycles quantum)
    : model_(policy, quantum)
{
}

sim::QueryId
QueryScheduler::enroll(std::uint32_t priority)
{
    const std::scoped_lock lock(mu_);
    const sim::QueryId id = model_.enroll(priority);
    states_.push_back(State::Running);
    ++unfinished_;
    return id;
}

void
QueryScheduler::maybeGrantLocked()
{
    if (grantOutstanding_ || waiting_ == 0 || waiting_ < unfinished_)
        return;
    // Every unfinished query is parked at admit(): the pick is a
    // pure function of policy state, independent of host timing.
    waitingScratch_.clear();
    for (sim::QueryId q = 0; q < states_.size(); ++q) {
        if (!model_.finished(q) && states_[q] == State::Waiting)
            waitingScratch_.push_back(q);
    }
    const sim::QueryId winner = model_.pick(waitingScratch_);
    states_[winner] = State::Granted;
    grantOutstanding_ = true;
    cv_.notify_all();
}

void
QueryScheduler::admit(sim::QueryId query)
{
    std::unique_lock lock(mu_);
    sisa_assert(states_[query] == State::Running,
                "admit() while already admitted");
    states_[query] = State::Waiting;
    ++waiting_;
    maybeGrantLocked();
    cv_.wait(lock, [&] { return states_[query] == State::Granted; });
    --waiting_;
    // The grant stays outstanding until report(); the query leaves
    // the waiting pool so no second grant can be issued meanwhile.
}

void
QueryScheduler::report(sim::QueryId query, DispatchDemand demand)
{
    const std::scoped_lock lock(mu_);
    sisa_assert(states_[query] == State::Granted,
                "report() without a grant");
    model_.charge(query, demand);
    states_[query] = State::Running;
    grantOutstanding_ = false;
    maybeGrantLocked();
}

mem::Cycles
QueryScheduler::ownCycles(sim::QueryId query) const
{
    const std::scoped_lock lock(mu_);
    return model_.ownCycles(query);
}

void
QueryScheduler::leave(sim::QueryId query, DispatchDemand demand)
{
    const std::scoped_lock lock(mu_);
    sisa_assert(!model_.finished(query), "leave() twice");
    model_.charge(query, demand);
    model_.finish(query);
    --unfinished_;
    // A departing grant-holder releases the slot; a departing
    // bystander may complete the "all parked" condition.
    if (states_[query] == State::Granted)
        grantOutstanding_ = false;
    states_[query] = State::Running;
    maybeGrantLocked();
}

} // namespace sisa::isa
