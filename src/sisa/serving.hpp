/**
 * @file
 * Multi-tenant admission layer over the SCU: K concurrent queries
 * (serve/scenario.hpp sessions) share the vault pool and the modeled
 * vault time, with a QueryScheduler deciding whose batch dispatches
 * next. The policy menu mirrors the SimpleSSD-ISC in-storage-compute
 * scheduler registry (FCFS / CREDIT / priority-based FLIN): FCFS
 * grants strictly by arrival, Credit is deficit round-robin over a
 * cycle quantum, Priority preempts at every dispatch boundary.
 *
 * Two layers, split for testability:
 *
 *  - ServingModel: the deterministic single-threaded core -- policy
 *    pick rule, per-query virtual timelines, shared per-vault busy
 *    clocks, the admission log, and the query LIFECYCLE machine
 *    (arrivals, deadlines, overload shedding, fault budgets). Exact-
 *    cycle pins drive it directly.
 *  - QueryScheduler: the thread-safe blocking wrapper the sessions'
 *    host threads park on. Admission is LOCKSTEP: a grant is issued
 *    only when every unfinished query is parked at its admit() point
 *    and at most one grant is outstanding, so the interleaving is a
 *    pure function of the policy and the queries' demands --
 *    deterministic regardless of host thread timing.
 *
 * Query lifecycle (PR 10). Every query walks the state machine
 *
 *   Pending -> Admitted -> Running -> { Completed, TimedOut,
 *                                       Shed, Aborted }
 *
 * entirely in VIRTUAL time: a query becomes eligible when the
 * admission clock reaches its arrival offset, enters the bounded
 * admission queue (Admitted), turns Running at its first grant, and
 * ends Completed -- or is cancelled at an admission boundary:
 * TimedOut when its own virtual timeline passes its deadline, Shed
 * when the overload policy drops it (queue overflow, or an EDF-
 * provably-unreachable deadline), Aborted when its fault budget is
 * exhausted. Cancellation is COOPERATIVE: the model never yanks a
 * dispatch mid-flight; it wakes the parked query with a verdict and
 * the SCU drains that query's async window, pricing the abandoned
 * work (scu.cancel_drains / setops.cancelled_cycles) before the
 * session retires. Because every decision reads only model state,
 * lifecycle verdicts and shed logs are deterministic and host-timing
 * independent.
 *
 * Isolation contract: scheduling moves MODELED time only. A query's
 * functional results, result ids, and setops.* work totals are
 * bit-identical solo vs. co-tenant under every policy (each session
 * owns its engine/store; only vault-time contention is shared), and
 * the sum of per-query own-cycle accounts equals the sum of the
 * sessions' context cycles -- no lost or double-charged cycles. The
 * lifecycle layer extends the contract to every COMPLETED query:
 * deadlines, shedding, and co-tenant cancellations never change what
 * a surviving query computes, only when it completes.
 */

#ifndef SISA_SISA_SERVING_HPP
#define SISA_SISA_SERVING_HPP

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mem/pim.hpp"
#include "sim/context.hpp"

namespace sisa::isa {

/** Admission policy menu (the SimpleSSD-ISC scheduler registry). */
enum class SchedPolicy : std::uint8_t { Fcfs, Credit, Priority };

const char *schedPolicyName(SchedPolicy policy);

/** Parse "fcfs" / "credit" / "priority" (nullopt on anything else). */
std::optional<SchedPolicy> parseSchedPolicy(std::string_view name);

/**
 * Lifecycle states of a served query. Running doubles as the
 * "granted, keep going" admit() verdict; the last four are terminal.
 */
enum class QueryState : std::uint8_t
{
    Pending,   ///< Enrolled; arrival not yet reached / not admitted.
    Admitted,  ///< In the admission queue, no dispatch granted yet.
    Running,   ///< At least one dispatch granted.
    Completed, ///< Ran to completion (possibly past its deadline).
    TimedOut,  ///< Cancelled: virtual deadline passed mid-run.
    Shed,      ///< Dropped by the overload policy before running.
    Aborted,   ///< Cancelled: fault budget exhausted.
};

const char *queryStateName(QueryState state);

/** Is @p state one of the four terminal verdicts? */
bool queryStateTerminal(QueryState state);

/**
 * Overload shedding policy of the bounded admission queue:
 *
 *  - none:   unbounded queue, nothing is ever shed;
 *  - reject: a query arriving into a full queue is shed;
 *  - oldest: a full queue sheds its oldest not-yet-running query to
 *            make room (the newcomer is shed if every queued query
 *            already ran);
 *  - edf:    grants go earliest-deadline-first, a full queue sheds
 *            the LATEST-deadline not-yet-running query, and a query
 *            whose deadline is provably unreachable -- even if every
 *            vault lane were free at its earliest start -- is shed
 *            at the admission boundary instead of wasting capacity.
 */
enum class ShedPolicy : std::uint8_t { None, Reject, Oldest, Edf };

const char *shedPolicyName(ShedPolicy policy);

/** Parse "none" / "reject" / "oldest" / "edf". */
std::optional<ShedPolicy> parseShedPolicy(std::string_view name);

/** QuerySpec sentinel: no deadline. */
inline constexpr mem::Cycles no_deadline = ~mem::Cycles{0};

/** QuerySpec sentinel: unlimited fault budget. */
inline constexpr std::uint64_t no_fault_budget = ~std::uint64_t{0};

/**
 * Per-query admission parameters. The default spec reproduces the
 * pre-lifecycle behaviour exactly: arrive at 0, never time out,
 * never shed, unlimited faults.
 */
struct AdmissionSpec
{
    /** Scheduler priority (SchedPolicy::Priority only). */
    std::uint32_t priority = 0;
    /** Virtual-time arrival offset (open-loop; no wall clock). */
    mem::Cycles arrival = 0;
    /** Virtual-time completion deadline, or no_deadline. */
    mem::Cycles deadline = no_deadline;
    /**
     * Max fault events (retries + lane stalls + quarantines, PR 6's
     * recovery accounting) before the query is Aborted.
     */
    std::uint64_t faultBudget = no_fault_budget;
};

/**
 * What one granted dispatch consumed, reported back at the next
 * admission boundary:
 *
 *  - `own`: the query's issuing-thread cycle delta (front-end
 *    charges, makespan/stall charges, serial ops since the last
 *    report) -- advances only that query's virtual timeline;
 *  - `lanes`: per-vault busy cycles the dispatch put on the shared
 *    vaults -- advance the shared vault clocks that co-tenant
 *    dispatches queue behind;
 *  - `faultEvents`: recovery events the dispatch absorbed (retries +
 *    lane stalls + quarantined vaults) -- drawn against the query's
 *    fault budget.
 */
struct DispatchDemand
{
    mem::Cycles own = 0;
    std::vector<std::pair<std::uint32_t, mem::Cycles>> lanes;
    std::uint64_t faultEvents = 0;

    void
    addLane(std::uint32_t vault, mem::Cycles cycles)
    {
        lanes.emplace_back(vault, cycles);
    }
};

/**
 * Thrown out of a gated dispatch when the scheduler cancelled the
 * query at the admission boundary (deadline, shed, fault budget).
 * NOT an error of the run: the serving layer catches it, retires the
 * session cleanly, and records the verdict in the query's report.
 */
class QueryCancelledError : public std::runtime_error
{
  public:
    QueryCancelledError(sim::QueryId query, QueryState verdict)
        : std::runtime_error("query " + std::to_string(query) +
                             " cancelled: " + queryStateName(verdict)),
          query_(query), verdict_(verdict)
    {
    }

    sim::QueryId query() const { return query_; }
    QueryState verdict() const { return verdict_; }

  private:
    sim::QueryId query_;
    QueryState verdict_;
};

/**
 * Deterministic serving core: policy state, per-query virtual
 * timelines, shared vault clocks, lifecycle machine. Single-threaded
 * -- QueryScheduler serializes access; tests drive it directly for
 * exact-cycle pins.
 *
 * Virtual-time rule (charge): a dispatch granted to query q starts at
 * q's issue point t0 (its arrival offset plus the sum of its own
 * cycles so far). Its own cycles advance the issue point to t0 + own;
 * each lane (v, c) occupies vault v from max(clock[v], t0) for c
 * cycles. The query's completion is the max of its final issue point
 * and every vault clock it ever advanced -- so a solo query arriving
 * at 0 completes exactly at its context cycle total (own already
 * contains each dispatch's makespan), and a co-tenant query
 * additionally waits out the vault time queued ahead of it.
 *
 * Admission clock (decide): grants only go to queries that have
 * ARRIVED. The clock nowV never ticks a host clock; at every
 * admission boundary it warps forward to the earliest ready point
 * (max of arrival and issue) over the parked queries, so at least
 * one query is always eligible and the sweep's outcome is a pure
 * function of model state.
 */
class ServingModel
{
  public:
    explicit ServingModel(SchedPolicy policy,
                          mem::Cycles quantum = default_quantum);

    /** Default Credit refill quantum (cycles of own-time per turn). */
    static constexpr mem::Cycles default_quantum = 50000;

    SchedPolicy policy() const { return policy_; }
    mem::Cycles quantum() const { return quantum_; }

    /**
     * Bound admission queue + shedding policy. @p capacity limits
     * the live admitted population (Admitted + Running); 0 means
     * unbounded. @p vaultWidth (the configured vault count) feeds
     * EDF's reachability bound; 0 disables the vault-floor term.
     * Configure before the first decide().
     */
    void setOverload(ShedPolicy shed, std::size_t capacity = 0,
                     std::uint32_t vaultWidth = 0);

    ShedPolicy shedPolicy() const { return shed_; }

    /**
     * Register a query; ids are dense and double as enrollment order
     * (FCFS rank, Priority tie-break, Credit round-robin order).
     */
    sim::QueryId enroll(const AdmissionSpec &spec);

    sim::QueryId
    enroll(std::uint32_t priority = 0)
    {
        AdmissionSpec spec;
        spec.priority = priority;
        return enroll(spec);
    }

    std::size_t enrolled() const { return queries_.size(); }

    /**
     * One admission-boundary decision over the parked set @p waiting
     * (non-empty, ascending): either a grant (verdict == Running) or
     * a cancellation wake (verdict == TimedOut / Shed / Aborted).
     * The sweep, in order: warp the admission clock, process
     * arrivals through the bounded queue, time out deadline
     * violators, abort budget exhaustions, shed EDF-unreachable
     * queries, then pick a grantee among the eligible. At most one
     * cancellation per call -- the wake occupies the grant slot.
     */
    struct Decision
    {
        sim::QueryId query = 0;
        QueryState verdict = QueryState::Running;
    };

    Decision decide(const std::vector<sim::QueryId> &waiting);

    /**
     * Choose which of @p waiting (non-empty, ascending) dispatches
     * next, and log the grant. Credit deducts on charge(), refilling
     * every live query by the quantum when no waiting query has
     * credit left. Under ShedPolicy::Edf the pick is earliest-
     * deadline-first instead of the base policy's rule. decide()
     * calls this with the eligible subset; exact-cycle pins call it
     * directly (every query eligible, lifecycle bypassed).
     */
    sim::QueryId pick(const std::vector<sim::QueryId> &waiting);

    /** Apply one granted dispatch's demand to the virtual clocks. */
    void charge(sim::QueryId query, const DispatchDemand &demand);

    /**
     * The query is done; freeze its completion time and terminal
     * state (the pending cancellation verdict if one was issued,
     * Completed otherwise).
     */
    void finish(sim::QueryId query);

    bool finished(sim::QueryId query) const;

    /** Lifecycle state (terminal only after finish()). */
    QueryState state(sim::QueryId query) const;

    /**
     * The cancellation verdict decide() woke @p query with, or
     * Running when it was granted normally. admit() returns this.
     */
    QueryState grantVerdict(sim::QueryId query) const;

    /** Virtual end-to-end makespan of a finished query. */
    mem::Cycles completion(sim::QueryId query) const;

    /** Total own (issuing-thread) cycles charged by the query. */
    mem::Cycles ownCycles(sim::QueryId query) const;

    /** The query's arrival offset / deadline (spec echo). */
    mem::Cycles arrival(sim::QueryId query) const;
    mem::Cycles deadline(sim::QueryId query) const;

    /** Fault events charged against the query's budget so far. */
    std::uint64_t faultSpend(sim::QueryId query) const;

    /** Completed at or before its deadline (no deadline = met). */
    bool deadlineMet(sim::QueryId query) const;

    /** Remaining Credit balance (meaningful under Credit only). */
    std::int64_t credit(sim::QueryId query) const;

    /** Busy-until clock of @p vault (0 if never touched). */
    mem::Cycles vaultClock(std::uint32_t vault) const;

    /** The admission clock (diagnostics; advanced by decide()). */
    mem::Cycles virtualNow() const { return nowV_; }

    /** Every grant in order -- the pinned admission interleaving. */
    const std::vector<sim::QueryId> &admissionLog() const
    {
        return admitted_;
    }

    /** One lifecycle transition (in decision order). */
    struct LifecycleEvent
    {
        sim::QueryId query = 0;
        QueryState state = QueryState::Pending;

        bool
        operator==(const LifecycleEvent &other) const
        {
            return query == other.query && state == other.state;
        }
    };

    /**
     * Every lifecycle transition in decision order -- the shed /
     * cancellation log the overload tests pin. Deterministic and
     * host-timing independent (decisions read only model state).
     */
    const std::vector<LifecycleEvent> &lifecycleLog() const
    {
        return lifecycle_;
    }

  private:
    struct Query
    {
        AdmissionSpec spec;
        QueryState state = QueryState::Pending;
        /** Cancellation verdict to deliver at the wake (or Running). */
        QueryState wake = QueryState::Running;
        mem::Cycles issue = 0; ///< Own-cycle timeline position.
        mem::Cycles tail = 0;  ///< Latest vault time it occupied.
        mem::Cycles own = 0;
        mem::Cycles completionAt = 0;
        std::uint64_t faultSpend = 0;
        std::int64_t credit = 0;
        bool done = false;
    };

    bool creditEligible(const std::vector<sim::QueryId> &waiting) const;

    /** max(arrival, issue): when q's next dispatch could start. */
    mem::Cycles readyPoint(const Query &q) const;

    /** Earliest free vault lane under the configured width. */
    mem::Cycles vaultFloor() const;

    /** Queries in Admitted/Running (the bounded-queue population). */
    std::size_t liveAdmitted() const;

    void transition(sim::QueryId query, QueryState state);

    /** Admit @p query or pick a shed victim (capacity policy). */
    std::optional<Decision> admitArrival(sim::QueryId query);

    SchedPolicy policy_;
    mem::Cycles quantum_;
    ShedPolicy shed_ = ShedPolicy::None;
    std::size_t capacity_ = 0; ///< 0 = unbounded.
    std::uint32_t vaultWidth_ = 0;
    mem::Cycles nowV_ = 0; ///< Admission clock (virtual, warped).
    std::vector<Query> queries_;
    std::vector<mem::Cycles> vaultClock_;
    std::vector<sim::QueryId> admitted_;
    std::vector<LifecycleEvent> lifecycle_;
    std::vector<sim::QueryId> eligibleScratch_;
    sim::QueryId cursor_ = 0; ///< Credit round-robin position.
};

/**
 * Thread-safe lockstep admission gate over a ServingModel. Protocol,
 * per session host thread:
 *
 *   id = enroll(spec);                // before any thread starts
 *   ... per dispatch:
 *   verdict = admit(id);              // blocks until granted/cancelled
 *   <dispatch through the bound Scu>  // (on a cancel verdict the Scu
 *   report(id, demand);               //  throws QueryCancelledError
 *   ... when the query completes:     //  instead of dispatching)
 *   leave(id, final_demand);          // trailing own cycles + done
 *
 * The Scu drives admit/report itself once bindQuery() attaches it to
 * a scheduler; leave() is the session teardown's job. A grant is
 * issued only when all unfinished queries are parked in admit(), so
 * every run of the same queries yields the same admission log.
 *
 * Cancellation rides the grant slot: a cancelled query wakes from
 * admit() with its verdict, does NOT report, and holds the slot
 * until its leave() -- so cancelled-session teardown (window drain,
 * set release) never overlaps a co-tenant's dispatch on the shared
 * worker pool.
 */
class QueryScheduler
{
  public:
    explicit QueryScheduler(
        SchedPolicy policy,
        mem::Cycles quantum = ServingModel::default_quantum);

    /** Configure overload protection BEFORE any thread starts. */
    void setOverload(ShedPolicy shed, std::size_t capacity = 0,
                     std::uint32_t vaultWidth = 0);

    /** Register a query BEFORE its session thread starts. */
    sim::QueryId enroll(const AdmissionSpec &spec);

    sim::QueryId
    enroll(std::uint32_t priority = 0)
    {
        AdmissionSpec spec;
        spec.priority = priority;
        return enroll(spec);
    }

    /**
     * Block until the policy grants this query a dispatch slot.
     * Returns QueryState::Running on a grant; a cancellation verdict
     * (TimedOut / Shed / Aborted) means the dispatch must NOT run --
     * the caller drains its in-flight state and unwinds to leave().
     */
    QueryState admit(sim::QueryId query);

    /** End the grant, feeding the dispatch's demand to the model. */
    void report(sim::QueryId query, DispatchDemand demand);

    /** Final demand (trailing own cycles) + mark the query done. */
    void leave(sim::QueryId query, DispatchDemand demand);

    /**
     * Own cycles the model has charged @p query so far, read under
     * the scheduler lock -- safe while co-tenants are still running
     * (session teardown settles its leave() tail against this).
     */
    mem::Cycles ownCycles(sim::QueryId query) const;

    /**
     * The model, for post-run inspection (completions, admission
     * log, lifecycle log). Only safe once every enrolled query has
     * left.
     */
    const ServingModel &model() const { return model_; }

  private:
    enum class State : std::uint8_t { Running, Waiting, Granted };

    /** Grant when all unfinished queries are parked (lock held). */
    void maybeGrantLocked();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    ServingModel model_;
    std::vector<State> states_;
    std::size_t unfinished_ = 0;
    std::size_t waiting_ = 0;
    bool grantOutstanding_ = false;
    std::vector<sim::QueryId> waitingScratch_;
};

} // namespace sisa::isa

#endif // SISA_SISA_SERVING_HPP
