/**
 * @file
 * Multi-tenant admission layer over the SCU: K concurrent queries
 * (serve/scenario.hpp sessions) share the vault pool and the modeled
 * vault time, with a QueryScheduler deciding whose batch dispatches
 * next. The policy menu mirrors the SimpleSSD-ISC in-storage-compute
 * scheduler registry (FCFS / CREDIT / priority-based FLIN): FCFS
 * grants strictly by arrival, Credit is deficit round-robin over a
 * cycle quantum, Priority preempts at every dispatch boundary.
 *
 * Two layers, split for testability:
 *
 *  - ServingModel: the deterministic single-threaded core -- policy
 *    pick rule, per-query virtual timelines, shared per-vault busy
 *    clocks, the admission log. Exact-cycle pins drive it directly.
 *  - QueryScheduler: the thread-safe blocking wrapper the sessions'
 *    host threads park on. Admission is LOCKSTEP: a grant is issued
 *    only when every unfinished query is parked at its admit() point
 *    and at most one grant is outstanding, so the interleaving is a
 *    pure function of the policy and the queries' demands --
 *    deterministic regardless of host thread timing.
 *
 * Isolation contract: scheduling moves MODELED time only. A query's
 * functional results, result ids, and setops.* work totals are
 * bit-identical solo vs. co-tenant under every policy (each session
 * owns its engine/store; only vault-time contention is shared), and
 * the sum of per-query own-cycle accounts equals the sum of the
 * sessions' context cycles -- no lost or double-charged cycles.
 */

#ifndef SISA_SISA_SERVING_HPP
#define SISA_SISA_SERVING_HPP

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "mem/pim.hpp"
#include "sim/context.hpp"

namespace sisa::isa {

/** Admission policy menu (the SimpleSSD-ISC scheduler registry). */
enum class SchedPolicy : std::uint8_t { Fcfs, Credit, Priority };

const char *schedPolicyName(SchedPolicy policy);

/** Parse "fcfs" / "credit" / "priority" (nullopt on anything else). */
std::optional<SchedPolicy> parseSchedPolicy(std::string_view name);

/**
 * What one granted dispatch consumed, reported back at the next
 * admission boundary:
 *
 *  - `own`: the query's issuing-thread cycle delta (front-end
 *    charges, makespan/stall charges, serial ops since the last
 *    report) -- advances only that query's virtual timeline;
 *  - `lanes`: per-vault busy cycles the dispatch put on the shared
 *    vaults -- advance the shared vault clocks that co-tenant
 *    dispatches queue behind.
 */
struct DispatchDemand
{
    mem::Cycles own = 0;
    std::vector<std::pair<std::uint32_t, mem::Cycles>> lanes;

    void
    addLane(std::uint32_t vault, mem::Cycles cycles)
    {
        lanes.emplace_back(vault, cycles);
    }
};

/**
 * Deterministic serving core: policy state, per-query virtual
 * timelines, shared vault clocks. Single-threaded -- QueryScheduler
 * serializes access; tests drive it directly for exact-cycle pins.
 *
 * Virtual-time rule (charge): a dispatch granted to query q starts at
 * q's issue point t0 (the sum of its own cycles so far; queries all
 * arrive at 0). Its own cycles advance the issue point to t0 + own;
 * each lane (v, c) occupies vault v from max(clock[v], t0) for c
 * cycles. The query's completion is the max of its final issue point
 * and every vault clock it ever advanced -- so a solo query's
 * completion equals its context cycle total exactly (own already
 * contains each dispatch's makespan), and a co-tenant query
 * additionally waits out the vault time queued ahead of it.
 */
class ServingModel
{
  public:
    explicit ServingModel(SchedPolicy policy,
                          mem::Cycles quantum = default_quantum);

    /** Default Credit refill quantum (cycles of own-time per turn). */
    static constexpr mem::Cycles default_quantum = 50000;

    SchedPolicy policy() const { return policy_; }
    mem::Cycles quantum() const { return quantum_; }

    /**
     * Register a query; ids are dense and double as arrival order
     * (FCFS rank, Priority tie-break, Credit round-robin order).
     */
    sim::QueryId enroll(std::uint32_t priority = 0);

    std::size_t enrolled() const { return queries_.size(); }

    /**
     * Choose which of @p waiting (non-empty, ascending) dispatches
     * next, and log the grant. Credit deducts on charge(), refilling
     * every live query by the quantum when no waiting query has
     * credit left.
     */
    sim::QueryId pick(const std::vector<sim::QueryId> &waiting);

    /** Apply one granted dispatch's demand to the virtual clocks. */
    void charge(sim::QueryId query, const DispatchDemand &demand);

    /** The query is done; freeze its completion time. */
    void finish(sim::QueryId query);

    bool finished(sim::QueryId query) const;

    /** Virtual end-to-end makespan of a finished query. */
    mem::Cycles completion(sim::QueryId query) const;

    /** Total own (issuing-thread) cycles charged by the query. */
    mem::Cycles ownCycles(sim::QueryId query) const;

    /** Remaining Credit balance (meaningful under Credit only). */
    std::int64_t credit(sim::QueryId query) const;

    /** Busy-until clock of @p vault (0 if never touched). */
    mem::Cycles vaultClock(std::uint32_t vault) const;

    /** Every grant in order -- the pinned admission interleaving. */
    const std::vector<sim::QueryId> &admissionLog() const
    {
        return admitted_;
    }

  private:
    struct Query
    {
        std::uint32_t priority = 0;
        mem::Cycles issue = 0; ///< Own-cycle timeline position.
        mem::Cycles tail = 0;  ///< Latest vault time it occupied.
        mem::Cycles own = 0;
        mem::Cycles completionAt = 0;
        std::int64_t credit = 0;
        bool done = false;
    };

    bool creditEligible(const std::vector<sim::QueryId> &waiting) const;

    SchedPolicy policy_;
    mem::Cycles quantum_;
    std::vector<Query> queries_;
    std::vector<mem::Cycles> vaultClock_;
    std::vector<sim::QueryId> admitted_;
    sim::QueryId cursor_ = 0; ///< Credit round-robin position.
};

/**
 * Thread-safe lockstep admission gate over a ServingModel. Protocol,
 * per session host thread:
 *
 *   id = enroll(priority);            // before any thread starts
 *   ... per dispatch:
 *   admit(id);                        // blocks until granted
 *   <dispatch through the bound Scu>
 *   report(id, demand);               // ends the grant
 *   ... when the query completes:
 *   leave(id, final_demand);          // trailing own cycles + done
 *
 * The Scu drives admit/report itself once bindQuery() attaches it to
 * a scheduler; leave() is the session teardown's job. A grant is
 * issued only when all unfinished queries are parked in admit(), so
 * every run of the same queries yields the same admission log.
 */
class QueryScheduler
{
  public:
    explicit QueryScheduler(
        SchedPolicy policy,
        mem::Cycles quantum = ServingModel::default_quantum);

    /** Register a query BEFORE its session thread starts. */
    sim::QueryId enroll(std::uint32_t priority = 0);

    /** Block until the policy grants this query a dispatch slot. */
    void admit(sim::QueryId query);

    /** End the grant, feeding the dispatch's demand to the model. */
    void report(sim::QueryId query, DispatchDemand demand);

    /** Final demand (trailing own cycles) + mark the query done. */
    void leave(sim::QueryId query, DispatchDemand demand);

    /**
     * Own cycles the model has charged @p query so far, read under
     * the scheduler lock -- safe while co-tenants are still running
     * (session teardown settles its leave() tail against this).
     */
    mem::Cycles ownCycles(sim::QueryId query) const;

    /**
     * The model, for post-run inspection (completions, admission
     * log). Only safe once every enrolled query has left.
     */
    const ServingModel &model() const { return model_; }

  private:
    enum class State : std::uint8_t { Running, Waiting, Granted };

    /** Grant when all unfinished queries are parked (lock held). */
    void maybeGrantLocked();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    ServingModel model_;
    std::vector<State> states_;
    std::size_t unfinished_ = 0;
    std::size_t waiting_ = 0;
    bool grantOutstanding_ = false;
    std::vector<sim::QueryId> waitingScratch_;
};

} // namespace sisa::isa

#endif // SISA_SISA_SERVING_HPP
