#include "sisa/set_store.hpp"

#include "sisa/faults.hpp"
#include "support/bits.hpp"
#include "support/logging.hpp"

namespace sisa::isa {

SetStore::SetStore(Element universe) : universe_(universe) {}

std::uint64_t
SetStore::denseBytes() const
{
    return support::ceilDiv(universe_, 8);
}

std::uint64_t
SetStore::payloadBytes(SetId id) const
{
    return isDense(id) ? denseBytes()
                       : cardinality(id) * sizeof(Element);
}

SetId
SetStore::allocateSlot()
{
    if (!freeList_.empty()) {
        const SetId id = freeList_.back();
        freeList_.pop_back();
        return id;
    }
    payloads_.emplace_back();
    metadata_.emplace_back();
    return static_cast<SetId>(payloads_.size() - 1);
}

void
SetStore::refreshMetadata(SetId id)
{
    if (checksumValid_.size() > id)
        checksumValid_[id] = false;
    SetMetadata &md = metadata_[id];
    if (std::holds_alternative<SortedArraySet>(payloads_[id])) {
        md.repr = SetRepr::SparseArray;
        md.cardinality = std::get<SortedArraySet>(payloads_[id]).size();
    } else {
        md.repr = SetRepr::DenseBitvector;
        md.cardinality = std::get<DenseBitset>(payloads_[id]).size();
    }
    md.live = true;
}

SetId
SetStore::createFromSorted(std::vector<Element> elems, SetRepr repr)
{
    const SetId id = allocateSlot();
    const std::uint64_t bytes =
        repr == SetRepr::SparseArray ? elems.size() * sizeof(Element)
                                     : denseBytes();
    if (repr == SetRepr::SparseArray) {
        payloads_[id] = SortedArraySet(std::move(elems));
    } else {
        payloads_[id] = DenseBitset::fromSorted(elems, universe_);
    }
    metadata_[id].location = space_.allocate("set", bytes).base;
    refreshMetadata(id);
    ++liveCount_;
    return id;
}

SetId
SetStore::createEmpty(SetRepr repr)
{
    return createFromSorted({}, repr);
}

SetId
SetStore::createFull()
{
    const SetId id = allocateSlot();
    payloads_[id] = DenseBitset::full(universe_);
    metadata_[id].location = space_.allocate("set", denseBytes()).base;
    refreshMetadata(id);
    ++liveCount_;
    return id;
}

SetId
SetStore::clone(SetId id)
{
    sisa_assert(live(id), "clone of a dead set ", id);
    const SetId copy = allocateSlot();
    payloads_[copy] = payloads_[id];
    metadata_[copy].location = metadata_[id].location;
    refreshMetadata(copy);
    ++liveCount_;
    return copy;
}

void
SetStore::destroy(SetId id)
{
    sisa_assert(live(id), "double destroy of set ", id);
    payloads_[id] = SortedArraySet();
    metadata_[id] = SetMetadata{};
    if (checksumValid_.size() > id)
        checksumValid_[id] = false;
    freeList_.push_back(id);
    --liveCount_;
}

void
SetStore::convert(SetId id, SetRepr repr)
{
    sisa_assert(live(id), "convert of a dead set ", id);
    if (metadata_[id].repr == repr)
        return;
    if (repr == SetRepr::DenseBitvector) {
        const auto &array = std::get<SortedArraySet>(payloads_[id]);
        payloads_[id] =
            DenseBitset::fromSorted(array.elements(), universe_);
    } else {
        payloads_[id] = std::get<DenseBitset>(payloads_[id])
                            .toSortedArray();
    }
    refreshMetadata(id);
}

bool
SetStore::live(SetId id) const
{
    return id < metadata_.size() && metadata_[id].live;
}

const SetMetadata &
SetStore::metadata(SetId id) const
{
    sisa_assert(live(id), "metadata of a dead set ", id);
    return metadata_[id];
}

bool
SetStore::isDense(SetId id) const
{
    return metadata(id).repr == SetRepr::DenseBitvector;
}

std::uint64_t
SetStore::cardinality(SetId id) const
{
    return metadata(id).cardinality;
}

const SortedArraySet &
SetStore::sa(SetId id) const
{
    sisa_assert(live(id) && !isDense(id), "set ", id, " is not an SA");
    return std::get<SortedArraySet>(payloads_[id]);
}

const DenseBitset &
SetStore::db(SetId id) const
{
    sisa_assert(live(id) && isDense(id), "set ", id, " is not a DB");
    return std::get<DenseBitset>(payloads_[id]);
}

SortedArraySet &
SetStore::mutableSa(SetId id)
{
    sisa_assert(live(id) && !isDense(id), "set ", id, " is not an SA");
    return std::get<SortedArraySet>(payloads_[id]);
}

DenseBitset &
SetStore::mutableDb(SetId id)
{
    sisa_assert(live(id) && isDense(id), "set ", id, " is not a DB");
    return std::get<DenseBitset>(payloads_[id]);
}

SetId
SetStore::adopt(SortedArraySet set)
{
    const SetId id = allocateSlot();
    metadata_[id].location =
        space_.allocate("set", set.size() * sizeof(Element)).base;
    payloads_[id] = std::move(set);
    refreshMetadata(id);
    ++liveCount_;
    return id;
}

SetId
SetStore::adopt(DenseBitset set)
{
    sisa_assert(set.universe() == universe_, "universe mismatch");
    const SetId id = allocateSlot();
    metadata_[id].location = space_.allocate("set", denseBytes()).base;
    payloads_[id] = std::move(set);
    refreshMetadata(id);
    ++liveCount_;
    return id;
}

bool
SetStore::member(SetId id, Element x) const
{
    if (isDense(id))
        return db(id).test(x);
    return sa(id).contains(x);
}

void
SetStore::insert(SetId id, Element x)
{
    sisa_assert(x < universe_, "element outside universe");
    if (isDense(id)) {
        mutableDb(id).set(x);
    } else {
        mutableSa(id).add(x);
    }
    refreshMetadata(id);
}

void
SetStore::remove(SetId id, Element x)
{
    if (isDense(id)) {
        mutableDb(id).clear(x);
    } else {
        mutableSa(id).remove(x);
    }
    refreshMetadata(id);
}

std::uint64_t
SetStore::storageBits() const
{
    std::uint64_t bits = 0;
    for (SetId id = 0; id < metadata_.size(); ++id) {
        if (!metadata_[id].live)
            continue;
        if (metadata_[id].repr == SetRepr::DenseBitvector) {
            bits += universe_;
        } else {
            bits += metadata_[id].cardinality * sets::word_bits;
        }
    }
    return bits;
}

std::uint64_t
SetStore::payloadChecksum(SetId id) const
{
    sisa_assert(live(id), "checksum of a dead set ", id);
    if (checksumValid_.size() <= id) {
        checksums_.resize(metadata_.size(), 0);
        checksumValid_.resize(metadata_.size(), false);
    }
    if (checksumValid_[id])
        return checksums_[id];
    std::uint64_t sum;
    if (std::holds_alternative<DenseBitset>(payloads_[id])) {
        const auto words =
            std::get<DenseBitset>(payloads_[id]).words();
        sum = fnvChecksum64(words.data(), words.size());
    } else {
        const auto span =
            std::get<SortedArraySet>(payloads_[id]).elements();
        sum = fnvChecksum32(span.data(), span.size());
    }
    checksums_[id] = sum;
    checksumValid_[id] = true;
    return sum;
}

std::vector<Element>
SetStore::elementsOf(SetId id) const
{
    if (isDense(id)) {
        std::vector<Element> out;
        out.reserve(db(id).size());
        db(id).collect(out);
        return out;
    }
    const auto span = sa(id).elements();
    return {span.begin(), span.end()};
}

} // namespace sisa::isa
