#include "sisa/vault_pool.hpp"

#include <algorithm>

namespace sisa::isa {

VaultWorkerPool::VaultWorkerPool(std::uint32_t workers)
{
    const std::uint32_t count = std::max<std::uint32_t>(workers, 1);
    threads_.reserve(count);
    errors_.resize(count);
    for (std::uint32_t i = 0; i < count; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

VaultWorkerPool::~VaultWorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
VaultWorkerPool::run(const std::function<void(std::uint32_t)> &job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &job;
    remaining_ = size();
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    for (std::exception_ptr &err : errors_) {
        if (err)
            std::rethrow_exception(err);
    }
}

void
VaultWorkerPool::runQueues(
    const std::vector<std::uint32_t> &lane_sizes, std::uint32_t owners,
    const std::function<void(std::uint32_t, std::uint32_t)> &execute,
    const std::function<void(std::uint32_t, std::uint32_t,
                             std::uint32_t)> &charge,
    bool steal,
    const std::function<bool(std::uint32_t)> *lane_dead)
{
    const auto lanes = static_cast<std::uint32_t>(lane_sizes.size());
    owners = std::min(std::max(owners, 1u), std::max(lanes, 1u));

    {
        const std::lock_guard<std::mutex> beat_lock(beatMutex_);
        if (laneBeatsCapacity_ < lanes) {
            auto grown =
                std::make_unique<std::atomic<std::uint32_t>[]>(lanes);
            if (accumulateBeats_) {
                // Mid-window growth must not drop the evidence
                // already gathered for the existing lanes.
                for (std::size_t l = 0; l < laneBeatsCapacity_; ++l)
                    grown[l].store(
                        laneBeats_[l].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
            }
            laneBeats_ = std::move(grown);
            laneBeatsCapacity_ = lanes;
        }
        if (!accumulateBeats_) {
            for (std::uint32_t l = 0; l < lanes; ++l)
                laneBeats_[l].store(0, std::memory_order_relaxed);
        }
    }

    // A dead lane's vault fail-stopped: nobody executes or charges
    // its operations and its heartbeat stays at zero (the watchdog's
    // timeout evidence); the SCU re-routes them in its recovery pass.
    const auto dead = [&](std::uint32_t l) {
        return lane_dead && (*lane_dead)(l);
    };

    if (!steal) {
        // No thieves means owners are the only claimants: the plain
        // ordered walk needs no claim states at all (pre-executed
        // balanced batches take this path on every dispatch).
        run([&](std::uint32_t w) {
            if (w >= owners)
                return;
            for (std::uint32_t l = w; l < lanes; l += owners) {
                if (dead(l))
                    continue;
                for (std::uint32_t pos = 0; pos < lane_sizes[l];
                     ++pos) {
                    execute(l, pos);
                    charge(w, l, pos);
                    laneBeats_[l].fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
        });
        return;
    }

    queueOffsets_.resize(lanes);
    std::size_t total = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        queueOffsets_[l] = total;
        total += lane_sizes[l];
    }
    if (opStateCapacity_ < total) {
        opState_ = std::make_unique<std::atomic<std::uint8_t>[]>(total);
        opStateCapacity_ = total;
    }
    for (std::size_t i = 0; i < total; ++i)
        opState_[i].store(op_free, std::memory_order_relaxed);
    if (laneClaimedCapacity_ < lanes) {
        laneClaimed_ =
            std::make_unique<std::atomic<std::uint32_t>[]>(lanes);
        laneClaimedCapacity_ = lanes;
    }
    for (std::uint32_t l = 0; l < lanes; ++l)
        laneClaimed_[l].store(0, std::memory_order_relaxed);

    // Execute an op this thread just claimed and publish completion.
    // The done flag is set even when execute throws: an owner may be
    // spin-waiting on it, and the pool barrier rethrows afterwards --
    // a missing flag would turn the exception into a deadlock.
    const auto execute_claimed = [&](std::uint32_t lane,
                                     std::uint32_t pos) {
        std::atomic<std::uint8_t> &state =
            opState_[queueOffsets_[lane] + pos];
        laneClaimed_[lane].fetch_add(1, std::memory_order_relaxed);
        try {
            execute(lane, pos);
        } catch (...) {
            state.store(op_done, std::memory_order_release);
            throw;
        }
        state.store(op_done, std::memory_order_release);
    };

    run([&](std::uint32_t w) {
        if (w < owners) {
            for (std::uint32_t l = w; l < lanes; l += owners) {
                if (dead(l))
                    continue;
                for (std::uint32_t pos = 0; pos < lane_sizes[l];
                     ++pos) {
                    std::atomic<std::uint8_t> &state =
                        opState_[queueOffsets_[l] + pos];
                    std::uint8_t expected = op_free;
                    if (state.compare_exchange_strong(
                            expected, op_claimed,
                            std::memory_order_acq_rel)) {
                        execute_claimed(l, pos);
                    } else {
                        // A thief has it: wait for the result (its
                        // write to the outcome slot is published by
                        // the release store of op_done).
                        while (state.load(std::memory_order_acquire) !=
                               op_done)
                            std::this_thread::yield();
                    }
                    charge(w, l, pos);
                    laneBeats_[l].fetch_add(
                        1, std::memory_order_relaxed);
                }
            }
        }
        // Out of owned work: steal single ops from the back of the
        // deepest remaining queue until nothing is left to claim.
        for (;;) {
            std::uint32_t best = UINT32_MAX;
            std::uint32_t best_left = 0;
            for (std::uint32_t l = 0; l < lanes; ++l) {
                if (dead(l))
                    continue;
                const std::uint32_t claimed = std::min(
                    laneClaimed_[l].load(std::memory_order_relaxed),
                    lane_sizes[l]);
                const std::uint32_t left = lane_sizes[l] - claimed;
                if (left > best_left) {
                    best = l;
                    best_left = left;
                }
            }
            if (best == UINT32_MAX)
                break;
            bool stole = false;
            for (std::uint32_t pos = lane_sizes[best]; pos-- > 0;) {
                std::atomic<std::uint8_t> &state =
                    opState_[queueOffsets_[best] + pos];
                if (state.load(std::memory_order_relaxed) != op_free)
                    continue;
                std::uint8_t expected = op_free;
                if (state.compare_exchange_strong(
                        expected, op_claimed,
                        std::memory_order_acq_rel)) {
                    execute_claimed(best, pos);
                    stole = true;
                    break;
                }
            }
            if (!stole) {
                // The depth estimate lagged the claim counters; let
                // them catch up instead of busy-rescanning.
                std::this_thread::yield();
            }
        }
    });
}

void
VaultWorkerPool::setBeatAccumulation(bool accumulate)
{
    const std::lock_guard<std::mutex> lock(beatMutex_);
    accumulateBeats_ = accumulate;
    for (std::size_t l = 0; l < laneBeatsCapacity_; ++l)
        laneBeats_[l].store(0, std::memory_order_relaxed);
}

void
VaultWorkerPool::workerLoop(std::uint32_t index)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::uint32_t)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            job = job_;
        }
        try {
            (*job)(index);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            errors_[index] = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--remaining_ == 0)
                done_.notify_all();
        }
    }
}

} // namespace sisa::isa
