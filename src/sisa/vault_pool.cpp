#include "sisa/vault_pool.hpp"

#include <algorithm>

namespace sisa::isa {

VaultWorkerPool::VaultWorkerPool(std::uint32_t workers)
{
    const std::uint32_t count = std::max<std::uint32_t>(workers, 1);
    threads_.reserve(count);
    errors_.resize(count);
    for (std::uint32_t i = 0; i < count; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

VaultWorkerPool::~VaultWorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
VaultWorkerPool::run(const std::function<void(std::uint32_t)> &job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &job;
    remaining_ = size();
    std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
    ++generation_;
    wake_.notify_all();
    done_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    for (std::exception_ptr &err : errors_) {
        if (err)
            std::rethrow_exception(err);
    }
}

void
VaultWorkerPool::workerLoop(std::uint32_t index)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::uint32_t)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            job = job_;
        }
        try {
            (*job)(index);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            errors_[index] = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--remaining_ == 0)
                done_.notify_all();
        }
    }
}

} // namespace sisa::isa
