/**
 * @file
 * SISA instruction tracing. When attached to an SCU, every issued set
 * operation is recorded in its RISC-V encoded form (Figure 5), as the
 * stream a compiled SISA binary would feed the SCU through the RoCC
 * interface (Section 8.5). Logical set ids are mapped onto the 32
 * architectural registers round-robin, mirroring a simple register
 * allocator. The trace can be disassembled back into mnemonics and
 * provides per-opcode histograms for instruction-mix studies.
 */

#ifndef SISA_SISA_TRACE_HPP
#define SISA_SISA_TRACE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sisa/encoding.hpp"
#include "sisa/isa.hpp"

namespace sisa::isa {

/** Records the encoded instruction stream issued to the SCU. */
class InstructionTrace
{
  public:
    InstructionTrace() = default;

    /** Record one instruction; set ids are folded into registers. */
    void
    record(SisaOp op, SetId rd, SetId rs1, SetId rs2)
    {
        SisaInst inst;
        inst.op = op;
        inst.rd = regOf(rd);
        inst.rs1 = regOf(rs1);
        inst.rs2 = regOf(rs2);
        inst.xd = producesSet(op) || producesScalar(op);
        inst.xs1 = rs1 != invalid_set;
        inst.xs2 = rs2 != invalid_set;
        words_.push_back(encode(inst));
        ++mix_[static_cast<std::size_t>(op)];
    }

    /** The raw 32-bit instruction stream. */
    const std::vector<std::uint32_t> &words() const { return words_; }

    std::uint64_t size() const { return words_.size(); }

    /** Instructions recorded for @p op. */
    std::uint64_t
    count(SisaOp op) const
    {
        return mix_[static_cast<std::size_t>(op)];
    }

    /** Human-readable disassembly, one mnemonic per line. */
    std::string
    disassemble() const
    {
        std::string out;
        for (std::uint32_t word : words_) {
            const auto inst = decode(word);
            if (!inst) {
                out += "<invalid>\n";
                continue;
            }
            out += sisaOpName(inst->op);
            out += " r";
            out += std::to_string(inst->rd);
            out += ", r";
            out += std::to_string(inst->rs1);
            out += ", r";
            out += std::to_string(inst->rs2);
            out += '\n';
        }
        return out;
    }

    void
    clear()
    {
        words_.clear();
        mix_.fill(0);
    }

  private:
    /** Fold a logical set id onto the 32 architectural registers. */
    static std::uint8_t
    regOf(SetId id)
    {
        return id == invalid_set ? 0 : static_cast<std::uint8_t>(
                                           id % 32);
    }

    std::vector<std::uint32_t> words_;
    std::array<std::uint64_t, num_sisa_ops> mix_{};
};

} // namespace sisa::isa

#endif // SISA_SISA_TRACE_HPP
