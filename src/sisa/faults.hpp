/**
 * @file
 * Deterministic fault injection for the SCU/vault execution stack.
 * Real PIM substrates (HMC/HBM logic layers, UPMEM-class DPUs) suffer
 * transient op faults, stalled lanes, and whole-vault failures; this
 * layer lets the simulator model them without giving up bit-exact
 * reproducibility. Four fault channels are injected at chosen
 * dispatch/op coordinates:
 *
 *  - transient op-result corruption: a vault computes and ships a
 *    result whose payload checksum no longer matches -- the SCU
 *    detects the mismatch on adoption and re-executes the op after an
 *    exponential cycle backoff (bounded by maxRetries);
 *  - interconnect transfer drops: a remote-operand transfer is lost
 *    and retransmitted, paying the full interconnect charge plus
 *    backoff per attempt;
 *  - lane stalls: a vault lane loses stallCycles of progress once
 *    (modeled as a memory stall on the lane);
 *  - permanent vault failures: from the given dispatch on, the vault
 *    is dead. The SCU's heartbeat watchdog times out, the vault is
 *    quarantined, resident sets are emergency-migrated off it, and
 *    the dead lanes' operations re-route and re-execute elsewhere
 *    (see Scu::dispatchBatch).
 *
 * Every decision is a pure splitmix64-style hash over (seed, fault
 * channel, coordinates): stateless, thread-safe, independent of
 * worker count and of the order in which workers ask. Recoverable
 * campaigns therefore produce final results bit-identical to the
 * fault-free run -- faults move cycles and the recovery counters
 * (scu.retries, scu.quarantines, setops.recovery_bytes), never
 * functional results.
 */

#ifndef SISA_SISA_FAULTS_HPP
#define SISA_SISA_FAULTS_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mem/pim.hpp"
#include "sisa/isa.hpp"

namespace sisa::isa {

/** Inject result corruption at one exact (dispatch, op) coordinate. */
struct CorruptionPoint
{
    std::uint64_t dispatch = 0; ///< dispatchBatch sequence number.
    std::uint32_t op = 0;       ///< Op index within the batch.
    std::uint32_t attempts = 1; ///< Corrupt this many attempts in a row.
};

/** Permanently fail @p vault at the start of @p dispatch. */
struct VaultFailurePoint
{
    std::uint64_t dispatch = 0;
    std::uint32_t vault = 0;
};

/** Fault model configuration (ScuConfig.faults). */
struct FaultConfig
{
    /**
     * Master switch. Disabled (the default) is guaranteed zero
     * overhead: the SCU installs no injector, performs no checksum
     * work, and charges cycles identical to a build without the
     * fault layer (guarded by the golden-trace pin).
     */
    bool enabled = false;
    /** Seed of every probabilistic channel. */
    std::uint64_t seed = 0;
    /** Per-(dispatch, op, attempt) result corruption probability. */
    double corruptRate = 0.0;
    /** Per-(dispatch, op) lane stall probability. */
    double stallRate = 0.0;
    /** Cycles one injected lane stall costs. */
    mem::Cycles stallCycles = 256;
    /** Per-(dispatch, vault, operand, attempt) transfer drop rate. */
    double dropRate = 0.0;
    /** Retry budget per op / per transfer before giving up. */
    std::uint32_t maxRetries = 4;
    /** Retry backoff: attempt k waits retryBackoffBase << k cycles. */
    mem::Cycles retryBackoffBase = 32;
    /** Cycles until the watchdog declares a silent vault dead. */
    mem::Cycles heartbeatTimeout = 1024;
    /**
     * Verify payload checksums: each remote operand after its
     * transfer and each executed result on adoption pays a
     * word-stream charge (mem::pnmStreamBytesCycles over its
     * footprint; counter scu.checksum_verifies). Required for
     * corruption detection.
     */
    bool verifyChecksums = true;
    /** Targeted corruptions (exactly reproducible, for cycle pins). */
    std::vector<CorruptionPoint> corruptAt;
    /** Scheduled permanent vault failures. */
    std::vector<VaultFailurePoint> vaultFailures;
};

/** A fault survived every recovery attempt the model allows. */
class UnrecoverableFaultError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * The injector: pure coordinate-hash decisions over a FaultConfig.
 * Const and stateless after construction -- batch workers query it
 * concurrently, and the answers do not depend on who asks first.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultConfig config);

    const FaultConfig &config() const { return config_; }

    /** Is attempt @p attempt of op @p op in @p dispatch corrupted? */
    bool corruptsResult(std::uint64_t dispatch, std::uint32_t op,
                        std::uint32_t attempt) const;

    /**
     * Is attempt @p attempt of @p operand's transfer into @p vault
     * during @p dispatch dropped on the interconnect?
     */
    bool dropsTransfer(std::uint64_t dispatch, std::uint32_t vault,
                       SetId operand, std::uint32_t attempt) const;

    /** Injected stall cycles for op @p op of @p dispatch (0 = none). */
    mem::Cycles stallCycles(std::uint64_t dispatch,
                            std::uint32_t op) const;

    /** Append the vaults that permanently fail at @p dispatch. */
    void failuresAt(std::uint64_t dispatch,
                    std::vector<std::uint32_t> &out) const;

    /** Cycle backoff before retry attempt @p attempt (exponential). */
    mem::Cycles
    backoff(std::uint32_t attempt) const
    {
        return config_.retryBackoffBase
               << std::min<std::uint32_t>(attempt, 20);
    }

  private:
    double uniform(std::uint64_t channel, std::uint64_t c0,
                   std::uint64_t c1, std::uint64_t c2) const;

    FaultConfig config_;
};

/**
 * Parse a comma-separated "key=value" fault spec (the sisa_run
 * `faults=` argument). Keys: seed, corrupt, stall, stall-cycles,
 * drop, retries, backoff, timeout, verify (0/1), fail=D@V
 * (repeatable: vault V dies at dispatch D), corrupt-at=D:OP[:N]
 * (repeatable). Returns nullopt and fills @p error on bad input.
 */
std::optional<FaultConfig> parseFaultSpec(std::string_view spec,
                                          std::string *error = nullptr);

/**
 * FNV-1a checksums over payload words -- the integrity code both the
 * SetStore (stored payloads) and the SCU (op results in flight) use,
 * so a stored set and a bit-identical computed result always agree.
 */
std::uint64_t fnvChecksum32(const std::uint32_t *data, std::size_t n);
std::uint64_t fnvChecksum64(const std::uint64_t *data, std::size_t n);

} // namespace sisa::isa

#endif // SISA_SISA_FAULTS_HPP
