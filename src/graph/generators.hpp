/**
 * @file
 * Deterministic graph generators. These provide (1) the Kronecker /
 * RMAT graphs the paper uses for its strong/weak-scaling study
 * (Section 9.2, "Scalability"), and (2) the building blocks the
 * dataset registry combines to synthesize structural analogues of the
 * Network Repository datasets in Table 7 (see DESIGN.md,
 * Substitution 2): Chung-Lu power-law graphs with controllable tail
 * weight plus planted dense communities that mimic the large cliques
 * of genome-style graphs.
 */

#ifndef SISA_GRAPH_GENERATORS_HPP
#define SISA_GRAPH_GENERATORS_HPP

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sisa::graph {

/** G(n, m) Erdos-Renyi: m distinct uniform edges. */
Graph erdosRenyi(VertexId n, std::uint64_t m, std::uint64_t seed);

/** Complete graph K_n. */
Graph complete(VertexId n);

/** Star: vertex 0 connected to all others (degeneracy 1, d = n-1). */
Graph star(VertexId n);

/** Simple path 0-1-...-(n-1). */
Graph path(VertexId n);

/** Simple cycle. */
Graph cycle(VertexId n);

/** Parameters for the RMAT/Kronecker generator. */
struct RmatParams
{
    std::uint32_t scale = 10;      ///< n = 2^scale vertices.
    std::uint32_t edgeFactor = 16; ///< m = edgeFactor * n edges.
    double a = 0.57;               ///< Graph500 defaults.
    double b = 0.19;
    double c = 0.19;
};

/** RMAT (Kronecker) graph, Graph500-style recursive quadrant splits. */
Graph rmat(const RmatParams &params, std::uint64_t seed);

/** Parameters for the Chung-Lu expected-degree generator. */
struct ChungLuParams
{
    VertexId n = 1000;
    std::uint64_t m = 10000;
    /** Power-law exponent of the weight sequence (smaller = heavier). */
    double exponent = 2.5;
    /**
     * Number of hub vertices whose weight is boosted so their expected
     * degree approaches hubDegreeFraction * n (mimics Fig. 7a's
     * genome graphs where vertices connect to >30% of all vertices).
     */
    VertexId hubs = 0;
    double hubDegreeFraction = 0.3;
    /**
     * Cap on any vertex's expected degree as a fraction of n
     * (<= 0 disables). Light-tailed analogues (soc-orkut, sc-pwtk)
     * use a small cap so no vertex grows a hub neighborhood.
     */
    double maxDegreeFraction = 0.0;
};

/**
 * Chung-Lu power-law graph: endpoints of each edge are drawn with
 * probability proportional to per-vertex weights w_v ~ v^{-1/(exp-1)}.
 */
Graph chungLu(const ChungLuParams &params, std::uint64_t seed);

/** Parameters for planted dense communities. */
struct PlantedCliqueParams
{
    std::uint32_t count = 0;     ///< Number of planted groups.
    std::uint32_t minSize = 4;   ///< Smallest group.
    std::uint32_t maxSize = 12;  ///< Largest group.
    double density = 1.0;        ///< 1.0 = true cliques.
};

/**
 * Overlay dense vertex groups on @p base: each group is a uniformly
 * random vertex subset wired into an (almost-)clique. Models the
 * dense clusters of biological/brain networks (Section 9.2).
 */
Graph plantCliques(const Graph &base, const PlantedCliqueParams &params,
                   std::uint64_t seed);

/** Uniform random vertex labels in [0, num_labels). */
std::vector<Label> randomVertexLabels(VertexId n, std::uint32_t num_labels,
                                      std::uint64_t seed);

} // namespace sisa::graph

#endif // SISA_GRAPH_GENERATORS_HPP
