#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "support/logging.hpp"

namespace sisa::graph {

std::uint32_t
Graph::maxDegree() const
{
    std::uint32_t max_deg = 0;
    for (VertexId v = 0; v < numVertices_; ++v)
        max_deg = std::max(max_deg, degree(v));
    return max_deg;
}

bool
Graph::hasEdge(VertexId u, VertexId v) const
{
    const auto nbrs = neighbors(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::int64_t
Graph::edgeIndex(VertexId u, VertexId v) const
{
    const auto nbrs = neighbors(u);
    auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    if (it == nbrs.end() || *it != v)
        return -1;
    return static_cast<std::int64_t>(
        offsets_[u] + static_cast<std::size_t>(it - nbrs.begin()));
}

Label
Graph::edgeLabel(VertexId u, VertexId v) const
{
    const std::int64_t idx = edgeIndex(u, v);
    sisa_assert(idx >= 0, "edgeLabel on a non-edge (", u, ",", v, ")");
    return edgeLabels_[static_cast<std::size_t>(idx)];
}

void
Graph::setVertexLabels(std::vector<Label> labels)
{
    sisa_assert(labels.size() == numVertices_,
                "label vector size must equal the vertex count");
    vertexLabels_ = std::move(labels);
}

Graph
Graph::orientByRank(const std::vector<std::uint32_t> &rank) const
{
    sisa_assert(!directed_, "orientByRank expects an undirected graph");
    sisa_assert(rank.size() == numVertices_, "rank size mismatch");

    GraphBuilder builder(numVertices_, /*directed=*/true);
    for (VertexId u = 0; u < numVertices_; ++u) {
        for (VertexId v : neighbors(u)) {
            if (rank[u] < rank[v])
                builder.addEdge(u, v);
        }
    }
    Graph oriented = builder.build();
    if (hasVertexLabels())
        oriented.vertexLabels_ = vertexLabels_;
    return oriented;
}

Graph
Graph::inducedSubgraph(const std::vector<VertexId> &vertices) const
{
    std::vector<VertexId> remap(numVertices_, invalid_vertex);
    for (std::size_t i = 0; i < vertices.size(); ++i)
        remap[vertices[i]] = static_cast<VertexId>(i);

    GraphBuilder builder(static_cast<VertexId>(vertices.size()), directed_);
    for (VertexId u : vertices) {
        for (VertexId v : neighbors(u)) {
            if (remap[v] == invalid_vertex)
                continue;
            // For undirected graphs each edge appears twice in the CSR;
            // only emit it once (the builder re-mirrors it).
            if (!directed_ && remap[u] > remap[v])
                continue;
            builder.addEdge(remap[u], remap[v]);
        }
    }
    Graph sub = builder.build();
    if (hasVertexLabels()) {
        std::vector<Label> labels(vertices.size());
        for (std::size_t i = 0; i < vertices.size(); ++i)
            labels[i] = vertexLabels_[vertices[i]];
        sub.setVertexLabels(std::move(labels));
    }
    return sub;
}

std::uint64_t
Graph::degreeSquareSum() const
{
    std::uint64_t sum = 0;
    for (VertexId v = 0; v < numVertices_; ++v) {
        const std::uint64_t d = degree(v);
        sum += d * d;
    }
    return sum;
}

std::string
Graph::describe() const
{
    std::ostringstream oss;
    oss << (directed_ ? "directed" : "undirected") << " graph: n="
        << numVertices_ << " m=" << numEdges_ << " dmax=" << maxDegree();
    return oss.str();
}

GraphBuilder::GraphBuilder(VertexId num_vertices, bool directed)
    : numVertices_(num_vertices), directed_(directed)
{
}

void
GraphBuilder::addEdge(VertexId u, VertexId v)
{
    if (u >= numVertices_ || v >= numVertices_)
        sisa_fatal("edge (", u, ",", v, ") out of range, n=", numVertices_);
    if (u == v)
        return; // Self-loops carry no information for mining kernels.
    edges_.emplace_back(u, v);
}

Graph
GraphBuilder::build()
{
    // Canonicalize undirected edges so duplicates collapse, then mirror.
    std::vector<std::pair<VertexId, VertexId>> arcs;
    arcs.reserve(directed_ ? edges_.size() : edges_.size() * 2);
    for (auto [u, v] : edges_) {
        if (directed_) {
            arcs.emplace_back(u, v);
        } else {
            arcs.emplace_back(std::min(u, v), std::max(u, v));
        }
    }
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());

    const std::uint64_t num_edges = arcs.size();
    if (!directed_) {
        const std::size_t unique_count = arcs.size();
        for (std::size_t i = 0; i < unique_count; ++i)
            arcs.emplace_back(arcs[i].second, arcs[i].first);
        std::sort(arcs.begin(), arcs.end());
    }

    Graph graph;
    graph.numVertices_ = numVertices_;
    graph.numEdges_ = num_edges;
    graph.directed_ = directed_;
    graph.offsets_.assign(numVertices_ + 1, 0);
    graph.adj_.resize(arcs.size());

    for (const auto &[u, v] : arcs)
        ++graph.offsets_[u + 1];
    for (VertexId v = 0; v < numVertices_; ++v)
        graph.offsets_[v + 1] += graph.offsets_[v];
    for (std::size_t i = 0; i < arcs.size(); ++i)
        graph.adj_[i] = arcs[i].second;

    edges_.clear();
    return graph;
}

} // namespace sisa::graph
