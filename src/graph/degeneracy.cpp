#include "graph/degeneracy.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace sisa::graph {

DegeneracyResult
exactDegeneracyOrder(const Graph &graph)
{
    const VertexId n = graph.numVertices();
    DegeneracyResult result;
    result.order.reserve(n);
    result.rank.assign(n, 0);
    result.coreNumber.assign(n, 0);

    // Bucket queue over current degrees (Matula-Beck smallest-last).
    std::vector<std::uint32_t> degree(n);
    std::uint32_t max_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
        degree[v] = graph.degree(v);
        max_degree = std::max(max_degree, degree[v]);
    }

    std::vector<std::vector<VertexId>> buckets(max_degree + 1);
    for (VertexId v = 0; v < n; ++v)
        buckets[degree[v]].push_back(v);

    std::vector<bool> removed(n, false);
    std::uint32_t current_core = 0;
    std::uint32_t cursor = 0; // Lowest possibly non-empty bucket.

    for (VertexId peeled = 0; peeled < n; ++peeled) {
        while (cursor <= max_degree && buckets[cursor].empty())
            ++cursor;
        sisa_assert(cursor <= max_degree, "bucket queue underflow");

        // Lazy deletion: entries may be stale after degree decrements.
        VertexId v = invalid_vertex;
        while (!buckets[cursor].empty()) {
            VertexId cand = buckets[cursor].back();
            buckets[cursor].pop_back();
            if (!removed[cand] && degree[cand] == cursor) {
                v = cand;
                break;
            }
        }
        if (v == invalid_vertex) {
            --peeled;
            continue;
        }

        current_core = std::max(current_core, cursor);
        result.coreNumber[v] = current_core;
        result.rank[v] = static_cast<std::uint32_t>(result.order.size());
        result.order.push_back(v);
        removed[v] = true;

        for (VertexId w : graph.neighbors(v)) {
            if (removed[w])
                continue;
            --degree[w];
            buckets[degree[w]].push_back(w);
            if (degree[w] < cursor)
                cursor = degree[w];
        }
    }

    result.degeneracy = current_core;
    return result;
}

DegeneracyResult
approxDegeneracyOrder(const Graph &graph, double eps)
{
    sisa_assert(eps > 0.0, "approxDegeneracyOrder requires eps > 0");
    const VertexId n = graph.numVertices();

    DegeneracyResult result;
    result.order.reserve(n);
    result.rank.assign(n, 0);
    result.coreNumber.assign(n, 0);

    std::vector<std::uint32_t> degree(n);
    std::vector<bool> removed(n, false);
    std::uint64_t remaining = n;
    std::uint64_t degree_sum = 0;
    for (VertexId v = 0; v < n; ++v) {
        degree[v] = graph.degree(v);
        degree_sum += degree[v];
    }

    std::uint32_t round = 0;
    std::uint32_t max_threshold = 0;
    while (remaining > 0) {
        const double avg =
            static_cast<double>(degree_sum) /
            static_cast<double>(remaining);
        const auto threshold =
            static_cast<std::uint32_t>((1.0 + eps) * avg);

        // X = { v in V : |N(v)| <= (1+eps) * avg } -- set difference
        // V \= X and neighborhood updates N(v) \= X follow Algorithm 6.
        std::vector<VertexId> peeled;
        for (VertexId v = 0; v < n; ++v) {
            if (!removed[v] && degree[v] <= threshold)
                peeled.push_back(v);
        }
        sisa_assert(!peeled.empty(),
                    "Algorithm 6 must peel at least one vertex per round");

        for (VertexId v : peeled) {
            result.coreNumber[v] = round;
            result.rank[v] = static_cast<std::uint32_t>(result.order.size());
            result.order.push_back(v);
            removed[v] = true;
        }
        // Update neighbor degrees after removing the whole batch; the
        // per-round batching is what makes the scheme parallel.
        std::uint64_t removed_degree = 0;
        for (VertexId v : peeled) {
            removed_degree += degree[v];
            for (VertexId w : graph.neighbors(v)) {
                if (!removed[w]) {
                    --degree[w];
                    --degree_sum;
                }
            }
        }
        degree_sum -= removed_degree;
        remaining -= peeled.size();
        max_threshold = std::max(max_threshold, threshold);
        ++round;
    }

    result.degeneracy = max_threshold;
    return result;
}

std::vector<VertexId>
kCore(const Graph &graph, std::uint32_t k)
{
    const DegeneracyResult deg = exactDegeneracyOrder(graph);
    std::vector<VertexId> core;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (deg.coreNumber[v] >= k)
            core.push_back(v);
    }
    return core;
}

} // namespace sisa::graph
