/**
 * @file
 * Plain-text edge-list I/O. The format is the de-facto standard of
 * graph repositories: one "u v" pair per line, '#' or '%' comments,
 * 0- or 1-based ids auto-detected from an optional header.
 */

#ifndef SISA_GRAPH_IO_HPP
#define SISA_GRAPH_IO_HPP

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace sisa::graph {

/** Read an undirected edge list from @p in. Vertex count is inferred. */
Graph readEdgeList(std::istream &in);

/** Read an undirected edge list from the file at @p file_path. */
Graph readEdgeListFile(const std::string &file_path);

/** Write "u v" lines (each undirected edge once, u < v). */
void writeEdgeList(const Graph &graph, std::ostream &out);

/** Write an edge list to the file at @p file_path. */
void writeEdgeListFile(const Graph &graph, const std::string &file_path);

} // namespace sisa::graph

#endif // SISA_GRAPH_IO_HPP
