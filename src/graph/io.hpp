/**
 * @file
 * Plain-text edge-list I/O. The format is the de-facto standard of
 * graph repositories: one "u v" pair per line, '#' or '%' comments,
 * 0- or 1-based ids auto-detected from an optional header.
 */

#ifndef SISA_GRAPH_IO_HPP
#define SISA_GRAPH_IO_HPP

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace sisa::graph {

/**
 * Malformed or unreadable edge-list input. Thrown BEFORE any Graph is
 * built (never a partial graph), with the 1-based input line for
 * parse errors (0 for file-level errors), so callers -- the CLI
 * driver, tests, library users -- can report and recover instead of
 * the process dying in library code.
 */
class GraphIoError : public std::runtime_error
{
  public:
    GraphIoError(const std::string &message, std::uint64_t line = 0)
        : std::runtime_error(message), line_(line)
    {
    }

    /** 1-based line of the offending input; 0 if not line-specific. */
    std::uint64_t line() const { return line_; }

  private:
    std::uint64_t line_;
};

/**
 * Read an undirected edge list from @p in. Vertex count is inferred.
 * Throws GraphIoError on malformed input: non-numeric or negative
 * ids, trailing junk after the pair, a line with fewer or more than
 * two fields, or an id overflowing VertexId.
 */
Graph readEdgeList(std::istream &in);

/**
 * Read an undirected edge list from the file at @p file_path. Throws
 * GraphIoError when the file cannot be opened or readEdgeList rejects
 * its contents.
 */
Graph readEdgeListFile(const std::string &file_path);

/** Write "u v" lines (each undirected edge once, u < v). */
void writeEdgeList(const Graph &graph, std::ostream &out);

/** Write an edge list to the file at @p file_path. */
void writeEdgeListFile(const Graph &graph, const std::string &file_path);

} // namespace sisa::graph

#endif // SISA_GRAPH_IO_HPP
