#include "graph/dataset_registry.hpp"

#include <algorithm>

#include "graph/generators.hpp"
#include "support/logging.hpp"

namespace sisa::graph {

namespace {

DatasetSpec
small(std::string name, std::string family, VertexId n, std::uint64_t m,
      TailProfile profile)
{
    return {std::move(name), std::move(family), n, m, n, m, profile,
            /*large=*/false, ""};
}

DatasetSpec
scaled(std::string name, std::string family, VertexId paper_n,
       std::uint64_t paper_m, VertexId n, std::uint64_t m,
       TailProfile profile, std::string note)
{
    return {std::move(name), std::move(family), paper_n, paper_m, n, m,
            profile, /*large=*/true, std::move(note)};
}

std::uint64_t
nameSeed(const std::string &name)
{
    // FNV-1a over the dataset name: stable across runs and platforms.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (char c : name) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

const std::vector<DatasetSpec> &
fig6Suite()
{
    static const std::vector<DatasetSpec> suite = {
        small("bio-SC-GT", "bio", 1700, 34000, TailProfile::HeavyTail),
        small("bn-flyMedulla", "bn", 1800, 8900, TailProfile::Moderate),
        small("bn-mouse", "bn", 1100, 90800, TailProfile::HeavyTail),
        small("int-antCol3-d1", "int", 161, 11100,
              TailProfile::DenseUniform),
        small("int-antCol5-d1", "int", 153, 9000,
              TailProfile::DenseUniform),
        small("int-antCol6-d2", "int", 165, 10200,
              TailProfile::DenseUniform),
        small("bio-CE-PG", "bio", 1800, 48000, TailProfile::HeavyTail),
        small("bio-DM-CX", "bio", 4000, 77000, TailProfile::HeavyTail),
        small("bio-DR-CX", "bio", 3200, 85000, TailProfile::HeavyTail),
        small("bio-HS-LC", "bio", 4200, 39000, TailProfile::HeavyTail),
        small("bio-SC-HT", "bio", 2000, 63000, TailProfile::HeavyTail),
        small("bio-WormNetB3", "bio", 2400, 79000,
              TailProfile::HeavyTail),
        small("dimacs-c500-9", "dimacs", 501, 112000,
              TailProfile::DenseUniform),
        small("econ-beacxc", "econ", 498, 42000, TailProfile::HeavyTail),
        small("econ-beaflw", "econ", 508, 44900, TailProfile::HeavyTail),
        small("econ-mbeacxc", "econ", 493, 41600,
              TailProfile::HeavyTail),
        small("econ-orani678", "econ", 2500, 86800,
              TailProfile::HeavyTail),
        small("int-HosWardProx", "int", 1800, 1400,
              TailProfile::Moderate),
        small("intD-antCol4", "int", 134, 5000,
              TailProfile::DenseUniform),
        small("soc-fbMsg", "soc", 1900, 13800, TailProfile::LightTail),
    };
    return suite;
}

const std::vector<DatasetSpec> &
fig1Suite()
{
    // Figure 1 uses graphs outside Table 7; the registry provides
    // same-regime analogues sized so a 6-point thread sweep of
    // Bron-Kerbosch completes in simulation.
    static const std::vector<DatasetSpec> suite = {
        small("int-authorship", "int", 3000, 25000,
              TailProfile::Moderate),
        small("int-citations", "int", 2500, 20000, TailProfile::Moderate),
        small("social-Flx", "soc", 4000, 35000, TailProfile::LightTail),
        small("social-Pok", "soc", 5000, 60000, TailProfile::LightTail),
    };
    return suite;
}

const std::vector<DatasetSpec> &
largeSuite()
{
    static const std::vector<DatasetSpec> suite = {
        scaled("bio-humanGene", "bio", 14000, 9000000, 14000, 1200000,
               TailProfile::HeavyTail, "edges scaled 1/7.5"),
        scaled("bio-mouseGene", "bio", 45000, 14500000, 30000, 1500000,
               TailProfile::HeavyTail, "scaled ~1/10"),
        scaled("edit-enwiktionary", "edit", 2100000, 5500000, 120000,
               320000, TailProfile::LightTail, "scaled 1/17"),
        scaled("int-dating", "int", 169000, 17300000, 40000, 1000000,
               TailProfile::Moderate, "scaled ~1/17"),
        scaled("sc-pwtk", "sc", 217900, 5600000, 50000, 1300000,
               TailProfile::LightTail, "scaled ~1/4.3"),
        scaled("soc-orkut", "soc", 3100000, 117000000, 80000, 3000000,
               TailProfile::LightTail, "scaled ~1/39"),
    };
    return suite;
}

std::vector<DatasetSpec>
allDatasets()
{
    std::vector<DatasetSpec> all = fig6Suite();
    const auto &fig1 = fig1Suite();
    all.insert(all.end(), fig1.begin(), fig1.end());
    const auto &large = largeSuite();
    all.insert(all.end(), large.begin(), large.end());
    return all;
}

const DatasetSpec *
findDatasetOrNull(const std::string &name)
{
    for (const auto *suite : {&fig6Suite(), &fig1Suite(), &largeSuite()}) {
        for (const auto &spec : *suite) {
            if (spec.name == name)
                return &spec;
        }
    }
    return nullptr;
}

const DatasetSpec &
findDataset(const std::string &name)
{
    const DatasetSpec *spec = findDatasetOrNull(name);
    if (!spec)
        sisa_fatal("unknown dataset '", name, "'");
    return *spec;
}

Graph
makeDataset(const DatasetSpec &spec)
{
    const std::uint64_t seed = nameSeed(spec.name);
    switch (spec.profile) {
      case TailProfile::DenseUniform: {
        const std::uint64_t max_edges =
            static_cast<std::uint64_t>(spec.vertices) *
            (spec.vertices - 1) / 2;
        return erdosRenyi(spec.vertices,
                          std::min(spec.edges, max_edges), seed);
      }
      case TailProfile::HeavyTail: {
        ChungLuParams cl;
        cl.n = spec.vertices;
        cl.m = spec.edges;
        cl.exponent = 1.9;
        cl.hubs = std::max<VertexId>(4, spec.vertices / 200);
        cl.hubDegreeFraction = spec.family == "bio" ? 0.4 : 0.25;
        Graph base = chungLu(cl, seed);
        // Dense clusters / large cliques: the genome-style structure
        // of Fig. 7a's discussion ("very dense large clusters").
        PlantedCliqueParams pc;
        pc.count = std::max<std::uint32_t>(8, spec.vertices / 100);
        pc.minSize = 5;
        pc.maxSize = spec.family == "bio" ? 18 : 12;
        return plantCliques(base, pc, seed ^ 0xabcdefULL);
      }
      case TailProfile::Moderate: {
        ChungLuParams cl;
        cl.n = spec.vertices;
        cl.m = spec.edges;
        cl.exponent = 2.3;
        cl.hubs = 2;
        cl.hubDegreeFraction = 0.1;
        Graph base = chungLu(cl, seed);
        PlantedCliqueParams pc;
        pc.count = spec.vertices / 300;
        pc.minSize = 4;
        pc.maxSize = 8;
        return pc.count ? plantCliques(base, pc, seed ^ 0xabcdefULL)
                        : base;
      }
      case TailProfile::LightTail: {
        ChungLuParams cl;
        cl.n = spec.vertices;
        cl.m = spec.edges;
        cl.exponent = 2.9;
        cl.hubs = 0;
        // Social/scientific graphs: no hub reaches a visible fraction
        // of n (soc-orkut's max degree is ~1% of n; pwtk is mesh-like).
        cl.maxDegreeFraction =
            spec.family == "sc" ? 0.005 : 0.02;
        return chungLu(cl, seed);
      }
    }
    sisa_panic("unreachable tail profile");
}

Graph
makeDataset(const std::string &name)
{
    return makeDataset(findDataset(name));
}

} // namespace sisa::graph
