/**
 * @file
 * Degeneracy orderings and k-cores (Sections 5.1.5 and 7.1 of the
 * SISA paper). The exact ordering is the classic Matula-Beck peeling;
 * the approximate parallel ordering is the streaming scheme of
 * Algorithm 6 (Besta et al. / Farach-Colton & Tsai), which SISA also
 * accelerates with set operations. Both are used to orient graphs so
 * out-degrees are bounded by (approximately) the degeneracy c.
 */

#ifndef SISA_GRAPH_DEGENERACY_HPP
#define SISA_GRAPH_DEGENERACY_HPP

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sisa::graph {

/** Result of a degeneracy-ordering computation. */
struct DegeneracyResult
{
    /** Vertices in peeling order (eta). */
    std::vector<VertexId> order;
    /** rank[v] = position of v in `order`. */
    std::vector<std::uint32_t> rank;
    /** Core number of each vertex (exact algorithm only). */
    std::vector<std::uint32_t> coreNumber;
    /** The graph degeneracy c (max over rounds for the approximation). */
    std::uint32_t degeneracy = 0;
};

/**
 * Exact degeneracy ordering by repeated minimum-degree peeling with a
 * bucket queue; O(n + m) time.
 */
DegeneracyResult exactDegeneracyOrder(const Graph &graph);

/**
 * Approximate degeneracy ordering (Algorithm 6): repeatedly peel all
 * vertices whose degree is at most (1 + eps) * averageDegree. Runs in
 * O(log n) rounds and gives a (2 + eps)-approximation of the optimal
 * out-degree bound. `coreNumber` holds the peeling round per vertex.
 *
 * @param eps Slack over the average degree (eps > 0).
 */
DegeneracyResult approxDegeneracyOrder(const Graph &graph,
                                       double eps = 0.1);

/**
 * The k-core of the graph: vertices whose core number is >= k (via
 * the exact ordering). Returns the surviving vertex ids, sorted.
 */
std::vector<VertexId> kCore(const Graph &graph, std::uint32_t k);

} // namespace sisa::graph

#endif // SISA_GRAPH_DEGENERACY_HPP
