#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace sisa::graph {

namespace {

using support::Xoshiro256;

/** Walker alias table for O(1) weighted vertex sampling. */
class AliasTable
{
  public:
    explicit AliasTable(const std::vector<double> &weights)
        : prob_(weights.size()), alias_(weights.size())
    {
        const std::size_t n = weights.size();
        double total = 0.0;
        for (double w : weights)
            total += w;
        sisa_assert(total > 0.0, "alias table needs positive total weight");

        std::vector<double> scaled(n);
        for (std::size_t i = 0; i < n; ++i)
            scaled[i] = weights[i] * static_cast<double>(n) / total;

        std::vector<std::uint32_t> small, large;
        for (std::size_t i = 0; i < n; ++i) {
            (scaled[i] < 1.0 ? small : large)
                .push_back(static_cast<std::uint32_t>(i));
        }
        while (!small.empty() && !large.empty()) {
            const std::uint32_t s = small.back();
            const std::uint32_t l = large.back();
            small.pop_back();
            prob_[s] = scaled[s];
            alias_[s] = l;
            scaled[l] = scaled[l] + scaled[s] - 1.0;
            if (scaled[l] < 1.0) {
                large.pop_back();
                small.push_back(l);
            }
        }
        for (std::uint32_t s : small) {
            prob_[s] = 1.0;
            alias_[s] = s;
        }
        for (std::uint32_t l : large) {
            prob_[l] = 1.0;
            alias_[l] = l;
        }
    }

    std::uint32_t
    sample(Xoshiro256 &rng) const
    {
        const auto slot = static_cast<std::uint32_t>(
            rng.nextBounded(prob_.size()));
        return rng.nextDouble() < prob_[slot] ? slot : alias_[slot];
    }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

} // namespace

Graph
erdosRenyi(VertexId n, std::uint64_t m, std::uint64_t seed)
{
    sisa_assert(n >= 2, "erdosRenyi needs n >= 2");
    const std::uint64_t max_edges =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    if (m > max_edges)
        sisa_fatal("erdosRenyi: m=", m, " exceeds n(n-1)/2=", max_edges);

    Xoshiro256 rng(seed);
    GraphBuilder builder(n);
    // Oversample to survive duplicate collapses, then trim in build();
    // for the sparse graphs we target the overshoot is tiny.
    std::uint64_t added = 0;
    std::uint64_t attempts = 0;
    const std::uint64_t attempt_limit = 40 * m + 1000;
    std::vector<std::pair<VertexId, VertexId>> seen;
    while (added < m && attempts < attempt_limit) {
        ++attempts;
        auto u = static_cast<VertexId>(rng.nextBounded(n));
        auto v = static_cast<VertexId>(rng.nextBounded(n));
        if (u == v)
            continue;
        if (u > v)
            std::swap(u, v);
        seen.emplace_back(u, v);
        ++added;
    }
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    // Top up after dedup so the edge count is exact where possible.
    while (seen.size() < m && attempts < attempt_limit) {
        ++attempts;
        auto u = static_cast<VertexId>(rng.nextBounded(n));
        auto v = static_cast<VertexId>(rng.nextBounded(n));
        if (u == v)
            continue;
        if (u > v)
            std::swap(u, v);
        auto it = std::lower_bound(seen.begin(), seen.end(),
                                   std::make_pair(u, v));
        if (it == seen.end() || *it != std::make_pair(u, v))
            seen.insert(it, {u, v});
    }
    for (auto [u, v] : seen)
        builder.addEdge(u, v);
    return builder.build();
}

Graph
complete(VertexId n)
{
    GraphBuilder builder(n);
    for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v)
            builder.addEdge(u, v);
    }
    return builder.build();
}

Graph
star(VertexId n)
{
    sisa_assert(n >= 2, "star needs n >= 2");
    GraphBuilder builder(n);
    for (VertexId v = 1; v < n; ++v)
        builder.addEdge(0, v);
    return builder.build();
}

Graph
path(VertexId n)
{
    GraphBuilder builder(n);
    for (VertexId v = 0; v + 1 < n; ++v)
        builder.addEdge(v, v + 1);
    return builder.build();
}

Graph
cycle(VertexId n)
{
    sisa_assert(n >= 3, "cycle needs n >= 3");
    GraphBuilder builder(n);
    for (VertexId v = 0; v < n; ++v)
        builder.addEdge(v, (v + 1) % n);
    return builder.build();
}

Graph
rmat(const RmatParams &params, std::uint64_t seed)
{
    const VertexId n = VertexId{1} << params.scale;
    const std::uint64_t m =
        static_cast<std::uint64_t>(params.edgeFactor) * n;
    const double d = 1.0 - params.a - params.b - params.c;
    sisa_assert(d > 0.0, "RMAT probabilities must sum below 1");

    Xoshiro256 rng(seed);
    GraphBuilder builder(n);
    for (std::uint64_t e = 0; e < m; ++e) {
        VertexId u = 0, v = 0;
        for (std::uint32_t bit = 0; bit < params.scale; ++bit) {
            const double r = rng.nextDouble();
            std::uint32_t quadrant;
            if (r < params.a) {
                quadrant = 0;
            } else if (r < params.a + params.b) {
                quadrant = 1;
            } else if (r < params.a + params.b + params.c) {
                quadrant = 2;
            } else {
                quadrant = 3;
            }
            u = (u << 1) | (quadrant >> 1);
            v = (v << 1) | (quadrant & 1);
        }
        if (u != v)
            builder.addEdge(u, v);
    }
    return builder.build();
}

Graph
chungLu(const ChungLuParams &params, std::uint64_t seed)
{
    const VertexId n = params.n;
    sisa_assert(n >= 2, "chungLu needs n >= 2");
    sisa_assert(params.exponent > 1.0, "chungLu needs exponent > 1");

    // Power-law weights: w_i = (i+1)^{-1/(gamma-1)}, the standard
    // Chung-Lu construction for a degree exponent of gamma.
    std::vector<double> weights(n);
    const double beta = 1.0 / (params.exponent - 1.0);
    for (VertexId i = 0; i < n; ++i)
        weights[i] = std::pow(static_cast<double>(i + 1), -beta);

    if (params.hubs > 0) {
        // Boost the first `hubs` weights so their expected degree is
        // about hubDegreeFraction * n: expected degree of i is
        // 2m * w_i / W, so set w_i = f*n/(2m) * W_rest approximately.
        double base_total = 0.0;
        for (double w : weights)
            base_total += w;
        const double target =
            params.hubDegreeFraction * static_cast<double>(n);
        const double hub_weight =
            target * base_total /
            std::max<double>(1.0, 2.0 * static_cast<double>(params.m) -
                                      target *
                                      static_cast<double>(params.hubs));
        for (VertexId i = 0; i < params.hubs && i < n; ++i)
            weights[i] = std::max(weights[i], hub_weight);
    }

    if (params.maxDegreeFraction > 0.0) {
        // Clamp weights so no expected degree exceeds the cap:
        // E[deg(i)] = 2m * w_i / W. Two passes converge well enough.
        for (int pass = 0; pass < 2; ++pass) {
            double total = 0.0;
            for (double w : weights)
                total += w;
            const double cap = params.maxDegreeFraction *
                               static_cast<double>(n) * total /
                               (2.0 * static_cast<double>(params.m));
            for (double &w : weights)
                w = std::min(w, cap);
        }
    }

    AliasTable alias(weights);
    Xoshiro256 rng(seed);
    GraphBuilder builder(n);
    // Draw endpoint pairs until m *unique* edges exist (duplicates
    // concentrate on hub pairs, so heavy-tailed targets need the
    // uniqueness bookkeeping to land near m).
    std::unordered_set<std::uint64_t> unique;
    unique.reserve(params.m * 2);
    const std::uint64_t attempt_limit = 30 * params.m + 1000;
    std::uint64_t attempts = 0;
    while (unique.size() < params.m && attempts < attempt_limit) {
        ++attempts;
        VertexId u = alias.sample(rng);
        VertexId v = alias.sample(rng);
        if (u == v)
            continue;
        if (u > v)
            std::swap(u, v);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(u) << 32) | v;
        if (unique.insert(key).second)
            builder.addEdge(u, v);
    }
    return builder.build();
}

Graph
plantCliques(const Graph &base, const PlantedCliqueParams &params,
             std::uint64_t seed)
{
    sisa_assert(params.minSize >= 2 && params.maxSize >= params.minSize,
                "invalid planted-clique size range");
    const VertexId n = base.numVertices();
    Xoshiro256 rng(seed);

    GraphBuilder builder(n);
    for (VertexId u = 0; u < n; ++u) {
        for (VertexId v : base.neighbors(u)) {
            if (u < v)
                builder.addEdge(u, v);
        }
    }
    const std::uint32_t span = params.maxSize - params.minSize + 1;
    for (std::uint32_t g = 0; g < params.count; ++g) {
        const std::uint32_t size =
            params.minSize + static_cast<std::uint32_t>(
                                 rng.nextBounded(span));
        std::vector<VertexId> members;
        members.reserve(size);
        while (members.size() < size) {
            const auto v = static_cast<VertexId>(rng.nextBounded(n));
            if (std::find(members.begin(), members.end(), v) ==
                members.end()) {
                members.push_back(v);
            }
        }
        for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t j = i + 1; j < members.size(); ++j) {
                if (params.density >= 1.0 ||
                    rng.nextDouble() < params.density) {
                    builder.addEdge(members[i], members[j]);
                }
            }
        }
    }
    return builder.build();
}

std::vector<Label>
randomVertexLabels(VertexId n, std::uint32_t num_labels, std::uint64_t seed)
{
    sisa_assert(num_labels >= 1, "need at least one label");
    Xoshiro256 rng(seed);
    std::vector<Label> labels(n);
    for (VertexId v = 0; v < n; ++v)
        labels[v] = static_cast<Label>(rng.nextBounded(num_labels));
    return labels;
}

} // namespace sisa::graph
