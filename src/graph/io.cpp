#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/logging.hpp"

namespace sisa::graph {

Graph
readEdgeList(std::istream &in)
{
    std::vector<std::pair<VertexId, VertexId>> edges;
    VertexId max_vertex = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        std::uint64_t u, v;
        if (!(ls >> u >> v))
            sisa_fatal("malformed edge-list line: '", line, "'");
        edges.emplace_back(static_cast<VertexId>(u),
                           static_cast<VertexId>(v));
        max_vertex = std::max({max_vertex, static_cast<VertexId>(u),
                               static_cast<VertexId>(v)});
    }
    GraphBuilder builder(edges.empty() ? 0 : max_vertex + 1);
    for (auto [u, v] : edges)
        builder.addEdge(u, v);
    return builder.build();
}

Graph
readEdgeListFile(const std::string &file_path)
{
    std::ifstream in(file_path);
    if (!in)
        sisa_fatal("cannot open graph file '", file_path, "'");
    return readEdgeList(in);
}

void
writeEdgeList(const Graph &graph, std::ostream &out)
{
    for (VertexId u = 0; u < graph.numVertices(); ++u) {
        for (VertexId v : graph.neighbors(u)) {
            if (graph.directed() || u < v)
                out << u << ' ' << v << '\n';
        }
    }
}

void
writeEdgeListFile(const Graph &graph, const std::string &file_path)
{
    std::ofstream out(file_path);
    if (!out)
        sisa_fatal("cannot write graph file '", file_path, "'");
    writeEdgeList(graph, out);
}

} // namespace sisa::graph
