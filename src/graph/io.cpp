#include "graph/io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <limits>
#include <string_view>
#include <vector>

#include "support/logging.hpp"

namespace sisa::graph {

namespace {

/**
 * Parse one vertex id field strictly: full-token std::from_chars into
 * the wide type, then a VertexId range check -- so "3x", "-1", "1e5",
 * and 2^32-and-up ids are all rejected instead of being truncated or
 * silently read as a shorter prefix (the old operator>> path accepted
 * "12junk" as 12 and wrapped overflowing ids).
 */
bool
parseVertex(std::string_view token, VertexId &out)
{
    std::uint64_t wide = 0;
    const char *begin = token.data();
    const char *end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, wide);
    if (ec != std::errc() || ptr != end)
        return false;
    if (wide > std::numeric_limits<VertexId>::max())
        return false;
    out = static_cast<VertexId>(wide);
    return true;
}

constexpr std::string_view whitespace = " \t\r\f\v";

} // namespace

Graph
readEdgeList(std::istream &in)
{
    std::vector<std::pair<VertexId, VertexId>> edges;
    VertexId max_vertex = 0;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        std::string_view rest = line;
        const std::size_t first = rest.find_first_not_of(whitespace);
        if (first == std::string_view::npos)
            continue;
        rest.remove_prefix(first);
        if (rest[0] == '#' || rest[0] == '%')
            continue;
        VertexId pair[2] = {0, 0};
        for (int field = 0; field < 2; ++field) {
            const std::size_t start =
                rest.find_first_not_of(whitespace);
            if (start == std::string_view::npos) {
                throw GraphIoError(
                    "truncated edge-list line " +
                        std::to_string(line_no) + ": '" + line + "'",
                    line_no);
            }
            rest.remove_prefix(start);
            const std::size_t len =
                std::min(rest.find_first_of(whitespace), rest.size());
            if (!parseVertex(rest.substr(0, len), pair[field])) {
                throw GraphIoError(
                    "malformed vertex id on edge-list line " +
                        std::to_string(line_no) + ": '" + line + "'",
                    line_no);
            }
            rest.remove_prefix(len);
        }
        if (rest.find_first_not_of(whitespace) !=
            std::string_view::npos) {
            throw GraphIoError("trailing junk on edge-list line " +
                                   std::to_string(line_no) + ": '" +
                                   line + "'",
                               line_no);
        }
        edges.emplace_back(pair[0], pair[1]);
        max_vertex = std::max({max_vertex, pair[0], pair[1]});
    }
    if (in.bad()) {
        throw GraphIoError("I/O error while reading edge list",
                           line_no);
    }
    // All input validated: only now does the graph get built, so a
    // throw above can never leave the caller a partial graph.
    GraphBuilder builder(edges.empty() ? 0 : max_vertex + 1);
    for (auto [u, v] : edges)
        builder.addEdge(u, v);
    return builder.build();
}

Graph
readEdgeListFile(const std::string &file_path)
{
    std::ifstream in(file_path);
    if (!in) {
        throw GraphIoError("cannot open graph file '" + file_path +
                           "'");
    }
    return readEdgeList(in);
}

void
writeEdgeList(const Graph &graph, std::ostream &out)
{
    for (VertexId u = 0; u < graph.numVertices(); ++u) {
        for (VertexId v : graph.neighbors(u)) {
            if (graph.directed() || u < v)
                out << u << ' ' << v << '\n';
        }
    }
}

void
writeEdgeListFile(const Graph &graph, const std::string &file_path)
{
    std::ofstream out(file_path);
    if (!out)
        sisa_fatal("cannot write graph file '", file_path, "'");
    writeEdgeList(graph, out);
}

} // namespace sisa::graph
