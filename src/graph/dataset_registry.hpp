/**
 * @file
 * Synthetic analogues of the Table 7 evaluation datasets. The
 * evaluation machine is offline, so each Network Repository graph is
 * re-created with the same (n, m) (large graphs are scaled down; see
 * `scaleNote`) and, crucially, the same degree-distribution regime the
 * paper's analysis keys on (Section 9.2 and Figure 7a):
 *
 *  - HeavyTail: bio-/bn-/econ- style graphs whose largest hubs connect
 *    to 15-50% of all vertices and that contain dense clusters /
 *    cliques (generated as Chung-Lu + hubs + planted cliques).
 *  - DenseUniform: the tiny, extremely dense interaction/dimacs graphs
 *    (ant colonies, c500-9), generated as dense Erdos-Renyi.
 *  - Moderate: interaction graphs with mild skew.
 *  - LightTail: social / scientific-computing graphs without large
 *    cliques or very dense clusters (soc-orkut, sc-pwtk analogues),
 *    where the paper observes muted SISA-PUM benefits.
 */

#ifndef SISA_GRAPH_DATASET_REGISTRY_HPP
#define SISA_GRAPH_DATASET_REGISTRY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace sisa::graph {

/** Degree-distribution regime of a synthesized dataset. */
enum class TailProfile { HeavyTail, DenseUniform, Moderate, LightTail };

/** Description of one registry dataset. */
struct DatasetSpec
{
    std::string name;        ///< Paper dataset name (e.g. "bio-SC-GT").
    std::string family;      ///< bio / bn / int / econ / soc / sc / ...
    VertexId paperVertices;  ///< n reported in Table 7.
    std::uint64_t paperEdges;///< m reported in Table 7.
    VertexId vertices;       ///< n we synthesize (== paper for small).
    std::uint64_t edges;     ///< m we synthesize.
    TailProfile profile;     ///< Structural regime (see above).
    bool large;              ///< Belongs to the Fig. 8 "large" suite.
    std::string scaleNote;   ///< Non-empty when scaled down.
};

/** The 20 small/medium graphs used in the Figure 6 main result. */
const std::vector<DatasetSpec> &fig6Suite();

/** The four graphs of the Figure 1 motivation study. */
const std::vector<DatasetSpec> &fig1Suite();

/** The large graphs of Figure 8 (scaled; see scaleNote). */
const std::vector<DatasetSpec> &largeSuite();

/** All registry entries. */
std::vector<DatasetSpec> allDatasets();

/** Find a spec by name (fatal when unknown). */
const DatasetSpec &findDataset(const std::string &name);

/**
 * Find a spec by name, or nullptr when unknown -- the non-fatal
 * lookup for callers (the CLI driver) that report the error
 * themselves instead of dying inside library code.
 */
const DatasetSpec *findDatasetOrNull(const std::string &name);

/**
 * Synthesize the graph for @p spec. Deterministic: the seed is derived
 * from the dataset name, so every run and every binary sees the same
 * graph.
 */
Graph makeDataset(const DatasetSpec &spec);

/** Convenience overload by dataset name. */
Graph makeDataset(const std::string &name);

} // namespace sisa::graph

#endif // SISA_GRAPH_DATASET_REGISTRY_HPP
