/**
 * @file
 * Compressed-sparse-row graphs (Section 2 of the SISA paper). A Graph
 * models either an undirected graph G = (V, E) with both edge
 * directions materialized, or a directed graph (e.g., the degeneracy
 * orientation used by the k-clique algorithms) with out-edges only.
 * Neighborhoods are sorted, following the established practice the
 * paper builds its set representations on, and optional vertex/edge
 * labels support the labeled subgraph-isomorphism algorithms.
 */

#ifndef SISA_GRAPH_GRAPH_HPP
#define SISA_GRAPH_GRAPH_HPP

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace sisa::graph {

/** Vertices are modeled with integers V = {0, ..., n-1}. */
using VertexId = std::uint32_t;

/** Sentinel for "no vertex". */
inline constexpr VertexId invalid_vertex = static_cast<VertexId>(-1);

/** Label type for labeled graphs (Section 5.1.6). */
using Label = std::uint32_t;

/** An undirected edge as an unordered pair (stored u <= v). */
struct Edge
{
    VertexId u;
    VertexId v;

    friend bool operator==(const Edge &, const Edge &) = default;
};

/**
 * Immutable CSR graph. Build through GraphBuilder or the generators.
 */
class Graph
{
  public:
    Graph() = default;

    /** Number of vertices n. */
    VertexId numVertices() const { return numVertices_; }

    /** Number of (undirected) edges m, or arcs for a directed graph. */
    std::uint64_t numEdges() const { return numEdges_; }

    /** Whether this graph stores directed arcs (out-edges only). */
    bool directed() const { return directed_; }

    /** Sorted neighbors N(v), or out-neighbors N+(v) when directed. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {adj_.data() + offsets_[v],
                adj_.data() + offsets_[v + 1]};
    }

    /** Degree d(v) (out-degree when directed). */
    std::uint32_t
    degree(VertexId v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }

    /** Maximum degree d over all vertices. */
    std::uint32_t maxDegree() const;

    /** O(log d(u)) membership test for the arc/edge (u, v). */
    bool hasEdge(VertexId u, VertexId v) const;

    /** Index into the CSR adjacency array for an arc, or -1. */
    std::int64_t edgeIndex(VertexId u, VertexId v) const;

    /** Byte offset of the offsets array (for the memory trace models). */
    const std::uint64_t *offsetsData() const { return offsets_.data(); }

    /** Raw adjacency storage (for the memory trace models). */
    const VertexId *adjData() const { return adj_.data(); }

    /** Whether vertex labels are attached. */
    bool hasVertexLabels() const { return !vertexLabels_.empty(); }

    /** Whether edge labels are attached. */
    bool hasEdgeLabels() const { return !edgeLabels_.empty(); }

    /** Label L(v); requires hasVertexLabels(). */
    Label vertexLabel(VertexId v) const { return vertexLabels_[v]; }

    /** Label L(u, v); requires hasEdgeLabels() and the edge to exist. */
    Label edgeLabel(VertexId u, VertexId v) const;

    /** Attach vertex labels (size must equal numVertices()). */
    void setVertexLabels(std::vector<Label> labels);

    /**
     * Attach a label to every edge, derived from @p fn(u, v); the
     * function must be symmetric for undirected graphs.
     */
    template <typename Fn>
    void
    setEdgeLabels(Fn &&fn)
    {
        edgeLabels_.resize(adj_.size());
        for (VertexId u = 0; u < numVertices_; ++u) {
            for (std::uint64_t i = offsets_[u]; i < offsets_[u + 1]; ++i)
                edgeLabels_[i] = fn(u, adj_[i]);
        }
    }

    /**
     * Orient an undirected graph by a total vertex order: keep arc
     * u -> v iff rank[u] < rank[v]. Used with the degeneracy order to
     * bound out-degrees by the degeneracy c (Section 7.1).
     *
     * @param rank rank[v] is the position of v in the order.
     */
    Graph orientByRank(const std::vector<std::uint32_t> &rank) const;

    /** Induced subgraph on @p vertices (ids are re-numbered densely). */
    Graph inducedSubgraph(const std::vector<VertexId> &vertices) const;

    /** Sum of deg(v)^2; appears in the Section 7 work bounds. */
    std::uint64_t degreeSquareSum() const;

    /** One-line human-readable description. */
    std::string describe() const;

  private:
    friend class GraphBuilder;

    VertexId numVertices_ = 0;
    std::uint64_t numEdges_ = 0;
    bool directed_ = false;
    std::vector<std::uint64_t> offsets_;
    std::vector<VertexId> adj_;
    std::vector<Label> vertexLabels_;
    std::vector<Label> edgeLabels_;
};

/**
 * Accumulates edges and materializes a CSR Graph. Duplicate edges and
 * self-loops are dropped; for undirected graphs both directions are
 * stored.
 */
class GraphBuilder
{
  public:
    /**
     * @param num_vertices Number of vertices (fixed up-front).
     * @param directed     Build a directed graph when true.
     */
    explicit GraphBuilder(VertexId num_vertices, bool directed = false);

    /** Queue one edge/arc; out-of-range endpoints are a fatal error. */
    void addEdge(VertexId u, VertexId v);

    /** Number of edges queued so far (before dedup). */
    std::uint64_t pendingEdges() const { return edges_.size(); }

    /** Sort, deduplicate, and produce the CSR graph. */
    Graph build();

  private:
    VertexId numVertices_;
    bool directed_;
    std::vector<std::pair<VertexId, VertexId>> edges_;
};

} // namespace sisa::graph

#endif // SISA_GRAPH_GRAPH_HPP
