/**
 * @file
 * Mixed-workload serving scenarios: K queries, each a full graph
 * algorithm in its own QuerySession with its own engine and store,
 * run concurrently against ONE shared graph, one shared host worker
 * pool, and one QueryScheduler deciding whose dispatch goes next.
 * This is the layer the `sisa_run serve=` CLI mode and the
 * bench/serving tail-latency harness sit on.
 *
 * Determinism: session setup (orientation, set materialization) runs
 * serially on the caller's thread -- the shared pool's runQueues is
 * not reentrant and setup dispatches are not admission-gated -- and
 * the algorithm phase runs on K host threads under the scheduler's
 * lockstep grants, so the admission log and every per-query cycle
 * count are a pure function of (graph, config), independent of host
 * thread timing.
 */

#ifndef SISA_SERVE_SCENARIO_HPP
#define SISA_SERVE_SCENARIO_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/context.hpp"
#include "sisa/batch.hpp"
#include "sisa/scu.hpp"
#include "sisa/serving.hpp"

namespace sisa::serve {

/** One tenant's workload. */
struct QuerySpec
{
    /**
     * Problem id: tc | mc | kcc-3..6 | cl-jac | cl-ovr | cl-tot |
     * lp (validServeProblem checks a string before it reaches the
     * scenario).
     */
    std::string problem;
    /** Scheduler priority (SchedPolicy::Priority only). */
    std::uint32_t priority = 0;
    /** Pattern cutoff; 0 picks the problem's serving default. */
    std::uint64_t cutoff = 0;
    /** Virtual arrival offset (cycles); queries park until then. */
    mem::Cycles arrival = 0;
    /** Absolute virtual deadline; no_deadline disables enforcement. */
    mem::Cycles deadline = isa::no_deadline;
    /** Fault events this query may absorb before it is Aborted. */
    std::uint64_t faultBudget = isa::no_fault_budget;
};

/** Whole-scenario configuration. */
struct ScenarioConfig
{
    isa::SchedPolicy policy = isa::SchedPolicy::Fcfs;
    mem::Cycles quantum = isa::ServingModel::default_quantum;
    /**
     * Per-session SCU configuration (vaults, batch workers, routing,
     * asyncDepth, faults). Every session gets its own SCU with this
     * config; they share one host worker pool and, through the
     * scheduler, the modeled vault timeline.
     */
    isa::ScuConfig scu{};
    /** Vault placement: "" / "hash" | "range" | "locality". */
    std::string placement{};
    /** Modeled threads per session (1 = one core per query). */
    std::uint32_t threads = 1;
    /** Overload policy for the bounded admission queue. */
    isa::ShedPolicy shed = isa::ShedPolicy::None;
    /** Admission queue bound (0 = unbounded) under shed != none. */
    std::uint32_t admitCapacity = 0;
    std::vector<QuerySpec> queries;
};

/** Per-query outcome of a serving run. */
struct QueryReport
{
    std::string problem;
    sim::QueryId id = 0;
    std::uint64_t value = 0;      ///< The algorithm's scalar result.
    mem::Cycles ownCycles = 0;    ///< Query-issued cycles (model).
    mem::Cycles completion = 0;   ///< Virtual end-to-end makespan.
    isa::QueryState state = isa::QueryState::Pending; ///< Verdict.
    mem::Cycles arrival = 0;      ///< Virtual arrival offset.
    mem::Cycles deadline = isa::no_deadline; ///< Contract deadline.
    bool deadlineMet = true;      ///< Completed within deadline?
    isa::BatchFaultSummary faults; ///< Faults across its dispatches.
    sim::QueryAccount account;    ///< Tagged busy/stall/counters.
};

/** Outcome of serveMixedWorkload. */
struct ScenarioReport
{
    std::vector<QueryReport> queries; ///< In enrollment order.
    std::vector<sim::QueryId> admissionLog;
    /** Every lifecycle transition, in virtual decision order. */
    std::vector<isa::ServingModel::LifecycleEvent> lifecycleLog;
    mem::Cycles makespan = 0; ///< Max completion over all queries.
};

/** Is @p problem one the serving scenario can run? */
bool validServeProblem(const std::string &problem);

/** Serving default pattern cutoff for @p problem. */
std::uint64_t serveDefaultCutoff(const std::string &problem);

/**
 * Deterministic open-loop arrival generator: @p n arrival offsets
 * whose inter-arrival gaps are exponentially distributed with mean
 * @p mean cycles, drawn from a splitmix64 stream seeded with @p seed.
 * Pure function of (seed, mean, n) -- no wall clock anywhere.
 */
std::vector<mem::Cycles> poissonArrivals(std::uint64_t seed,
                                         double mean, std::size_t n);

/**
 * Run every query of @p config concurrently against @p graph and
 * report per-query results, virtual completions, fault summaries,
 * and tagged accounts. Throws on invalid specs; exceptions thrown
 * by a query's algorithm (e.g. strict-analyze rejects) are captured
 * per query, the scenario still drains cleanly, and the first one
 * is rethrown after all sessions retired.
 */
ScenarioReport serveMixedWorkload(const graph::Graph &graph,
                                  const ScenarioConfig &config);

} // namespace sisa::serve

#endif // SISA_SERVE_SCENARIO_HPP
