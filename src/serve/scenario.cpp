#include "serve/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "algorithms/bron_kerbosch.hpp"
#include "algorithms/clustering.hpp"
#include "algorithms/kclique.hpp"
#include "algorithms/link_prediction.hpp"
#include "algorithms/triangle_count.hpp"
#include "core/query_session.hpp"
#include "core/sisa_engine.hpp"
#include "sisa/placement.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace sisa::serve {

namespace {

bool
needsOrientation(const std::string &problem)
{
    return problem == "tc" || problem.rfind("kcc-", 0) == 0;
}

std::uint32_t
cliqueK(const std::string &problem)
{
    // validServeProblem vetted the suffix: a single digit 3..6.
    return static_cast<std::uint32_t>(problem[4] - '0');
}

algorithms::SimilarityMeasure
clusteringMeasure(const std::string &problem)
{
    if (problem == "cl-jac")
        return algorithms::SimilarityMeasure::Jaccard;
    if (problem == "cl-ovr")
        return algorithms::SimilarityMeasure::Overlap;
    return algorithms::SimilarityMeasure::TotalNeighbors;
}

/** Everything one tenant owns (engine, graph views, session). */
struct Tenant
{
    std::unique_ptr<core::SisaEngine> engine;
    std::unique_ptr<core::QuerySession> session;
    std::unique_ptr<algorithms::OrientedSetGraph> osg;
    std::unique_ptr<core::SetGraph> sg;
    std::uint64_t value = 0;
    std::exception_ptr error;
};

/** The harness's placement menu, rebuilt here for serving runs. */
void
installPlacement(core::SisaEngine &engine, const std::string &name,
                 std::uint32_t vaults, const core::SetGraph &sg)
{
    if (name.empty() || name == "hash")
        return; // Hash is the SCU's default placement.
    std::shared_ptr<isa::PlacementPolicy> policy;
    if (name == "range") {
        policy = std::make_shared<isa::RangePlacement>(vaults);
    } else if (name == "locality") {
        policy = isa::greedyLocalityPlacement(
            vaults, core::placementArcs(sg));
    } else {
        sisa_assert(false,
                    "unknown placement policy "
                    "(hash | range | locality)");
    }
    engine.scu().setPlacement(std::move(policy));
}

std::uint64_t
runQuery(Tenant &tenant, const QuerySpec &spec,
         const graph::Graph &graph)
{
    core::QuerySession &session = *tenant.session;
    if (spec.problem == "tc")
        return algorithms::triangleCount(*tenant.osg, session);
    if (spec.problem.rfind("kcc-", 0) == 0)
        return algorithms::kCliqueCount(*tenant.osg, session,
                                        cliqueK(spec.problem));
    if (spec.problem == "mc")
        return algorithms::maximalCliques(*tenant.sg, session)
            .cliqueCount;
    if (spec.problem.rfind("cl-", 0) == 0)
        return algorithms::jarvisPatrick(
                   *tenant.sg, session,
                   clusteringMeasure(spec.problem),
                   spec.problem == "cl-tot" ? 2.0 : 0.05)
            .clusterEdges;
    // lp: the query owns all its sets; only the graph is shared.
    return algorithms::linkPredictionTest(
               session, graph,
               algorithms::SimilarityMeasure::CommonNeighbors, 0.1,
               /*seed=*/7)
        .correct;
}

} // namespace

bool
validServeProblem(const std::string &problem)
{
    if (problem == "tc" || problem == "mc" || problem == "lp" ||
        problem == "cl-jac" || problem == "cl-ovr" ||
        problem == "cl-tot")
        return true;
    return problem.size() == 5 && problem.rfind("kcc-", 0) == 0 &&
           problem[4] >= '3' && problem[4] <= '6';
}

std::uint64_t
serveDefaultCutoff(const std::string &problem)
{
    if (problem == "tc")
        return 2000;
    if (problem.rfind("kcc-", 0) == 0)
        return 300;
    if (problem == "mc")
        return 60;
    if (problem.rfind("cl-", 0) == 0)
        return 1500;
    return 0; // lp has no pattern cutoff.
}

std::vector<mem::Cycles>
poissonArrivals(std::uint64_t seed, double mean, std::size_t n)
{
    sisa_assert(mean > 0.0, "poissonArrivals: mean must be positive");
    support::SplitMix64 rng(seed);
    std::vector<mem::Cycles> arrivals;
    arrivals.reserve(n);
    double clock = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        // 53-bit mantissa uniform in (0, 1]: never feeds log() zero.
        const double u =
            1.0 - static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
        clock += -mean * std::log(u);
        arrivals.push_back(static_cast<mem::Cycles>(clock));
    }
    return arrivals;
}

ScenarioReport
serveMixedWorkload(const graph::Graph &graph,
                   const ScenarioConfig &config)
{
    sisa_assert(!config.queries.empty(),
                "serveMixedWorkload: no queries");
    for (const QuerySpec &spec : config.queries) {
        sisa_assert(validServeProblem(spec.problem),
                    "serveMixedWorkload: unknown problem");
    }

    isa::QueryScheduler sched(config.policy, config.quantum);
    sched.setOverload(config.shed, config.admitCapacity,
                      config.scu.pim.vaults);
    std::vector<Tenant> tenants(config.queries.size());

    // Phase 1 (serial, this thread): per-tenant engines, sessions,
    // and graph state. Setup dispatches are not admission-gated and
    // the shared pool is single-dispatch, so this must not overlap
    // the concurrent phase. Enrollment order == spec order, which is
    // what FCFS arrival rank and Credit round-robin order mean.
    std::shared_ptr<isa::VaultWorkerPool> pool;
    for (std::size_t i = 0; i < config.queries.size(); ++i) {
        const QuerySpec &spec = config.queries[i];
        Tenant &t = tenants[i];
        t.engine = std::make_unique<core::SisaEngine>(
            graph.numVertices(), config.scu, config.threads);
        if (!pool)
            pool = t.engine->scu().sharedPool();
        else
            t.engine->scu().adoptPool(pool);
        isa::AdmissionSpec admission;
        admission.priority = spec.priority;
        admission.arrival = spec.arrival;
        admission.deadline = spec.deadline;
        admission.faultBudget = spec.faultBudget;
        t.session = std::make_unique<core::QuerySession>(
            spec.problem, sched, config.threads, admission);
        t.session->ctx().setPatternCutoff(
            spec.cutoff != 0 ? spec.cutoff
                             : serveDefaultCutoff(spec.problem));
        if (needsOrientation(spec.problem)) {
            t.osg = std::make_unique<algorithms::OrientedSetGraph>(
                graph, *t.engine);
            installPlacement(*t.engine, config.placement,
                             config.scu.pim.vaults, *t.osg->sets);
        } else if (spec.problem != "lp") {
            t.sg = std::make_unique<core::SetGraph>(graph, *t.engine);
            installPlacement(*t.engine, config.placement,
                             config.scu.pim.vaults, *t.sg);
        }
        // lp builds its own sets during the query; placement stays
        // at the default (no neighborhood arcs to seed from yet).
    }

    // Phase 2: attach everything, then run. Attach comes after ALL
    // setup so no gated dispatch can start while another tenant is
    // still doing ungated setup work on the shared pool.
    for (Tenant &t : tenants)
        t.session->attach(*t.engine);

    std::vector<std::thread> threads;
    threads.reserve(tenants.size());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        threads.emplace_back([&, i] {
            Tenant &t = tenants[i];
            try {
                t.value = runQuery(t, config.queries[i], graph);
            } catch (const isa::QueryCancelledError &) {
                // A lifecycle verdict (TimedOut / Shed / Aborted),
                // not an error: the report carries the state and the
                // query's value stays 0.
            } catch (...) {
                t.error = std::current_exception();
            }
            // Retire even on error: a query that never leaves would
            // park every co-tenant forever (lockstep grants).
            try {
                t.session->finish();
            } catch (...) {
                if (!t.error)
                    t.error = std::current_exception();
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (Tenant &t : tenants) {
        if (t.error)
            std::rethrow_exception(t.error);
    }

    ScenarioReport report;
    report.queries.reserve(tenants.size());
    report.admissionLog = sched.model().admissionLog();
    report.lifecycleLog = sched.model().lifecycleLog();
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        Tenant &t = tenants[i];
        QueryReport qr;
        qr.problem = config.queries[i].problem;
        qr.id = t.session->id();
        qr.value = t.value;
        qr.ownCycles = sched.model().ownCycles(qr.id);
        qr.completion = sched.model().completion(qr.id);
        qr.state = sched.model().state(qr.id);
        qr.arrival = sched.model().arrival(qr.id);
        qr.deadline = sched.model().deadline(qr.id);
        qr.deadlineMet = sched.model().deadlineMet(qr.id);
        qr.faults = t.session->faults();
        qr.account = t.session->ctx().queryAccount(qr.id);
        report.makespan = std::max(report.makespan, qr.completion);
        report.queries.push_back(std::move(qr));
    }
    return report;
}

} // namespace sisa::serve
