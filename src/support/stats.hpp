/**
 * @file
 * Statistics helpers used by the benchmark harness. The SISA paper
 * (Section 9.1, "Performance Measures & Summaries") reports both
 * "speedup-of-avgs" (ratio of average runtimes) and "avg-of-speedups"
 * (geometric mean of per-datapoint speedups); both are implemented
 * here, together with plain accumulators and histogram utilities.
 */

#ifndef SISA_SUPPORT_STATS_HPP
#define SISA_SUPPORT_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace sisa::support {

/** Streaming accumulator for min/max/mean over doubles. */
class Accumulator
{
  public:
    void add(double sample);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of @p samples; 0 when empty. */
double arithmeticMean(const std::vector<double> &samples);

/** Geometric mean of @p samples (all positive); 0 when empty. */
double geometricMean(const std::vector<double> &samples);

/**
 * "speedup-of-avgs" (Section 9.1): mean(baseline) / mean(improved).
 * Returns 0 if either vector is empty or the improved mean is zero.
 */
double speedupOfAverages(const std::vector<double> &baseline,
                         const std::vector<double> &improved);

/**
 * "avg-of-speedups" (Section 9.1): geometric mean of the pointwise
 * ratios baseline[i] / improved[i]. Pairs where improved[i] == 0 are
 * skipped. Requires equally sized vectors.
 */
double averageOfSpeedups(const std::vector<double> &baseline,
                         const std::vector<double> &improved);

/**
 * Nearest-rank percentile (inclusive): the smallest sample such that
 * at least p% of the samples are <= it -- sorted[ceil(p/100 * n) - 1].
 * This is the tail-latency convention (a p99 of 100 samples is the
 * 99th-smallest, i.e. the worst sample excluded), exact on integer
 * cycle counts: no interpolation, the returned value is always an
 * actual sample. @p samples need not be sorted; p is clamped to
 * (0, 100]. Returns 0 when empty.
 */
double percentile(std::vector<double> samples, double p);

/** percentile() at the serving benches' standard points. */
double p50(const std::vector<double> &samples);
double p95(const std::vector<double> &samples);
double p99(const std::vector<double> &samples);

/**
 * Fraction of paired samples with completion[i] <= deadline[i] --
 * the deadline hit ratio of a served query population. Queries that
 * never completed are reported by passing an infinite completion
 * (or simply omitting the pair). Empty input is vacuously 1.
 * Requires equally sized vectors.
 */
double deadlineHitRatio(const std::vector<double> &completions,
                        const std::vector<double> &deadlines);

/**
 * Goodput in queries: how many paired samples completed within BOTH
 * their deadline and the horizon (horizon 0 = unbounded). This is
 * the numerator the overload benches gate on -- work that was
 * finished in time, not merely admitted. Requires equally sized
 * vectors.
 */
double goodput(const std::vector<double> &completions,
               const std::vector<double> &deadlines, double horizon);

/**
 * Fixed-bin histogram over non-negative integer samples, used for the
 * set-size traces behind Figure 9b and the degree distributions of
 * Figure 7a.
 */
class Histogram
{
  public:
    /** @param bin_width Width of each bin (>= 1). */
    explicit Histogram(std::uint64_t bin_width = 1);

    void add(std::uint64_t value, std::uint64_t weight = 1);

    /** Bin start -> total weight, ordered by bin. */
    const std::map<std::uint64_t, std::uint64_t> &bins() const
    {
        return bins_;
    }

    std::uint64_t totalWeight() const { return total_; }

    /** Normalized frequency of the bin containing @p value. */
    double frequency(std::uint64_t value) const;

  private:
    std::uint64_t binWidth_;
    std::map<std::uint64_t, std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

} // namespace sisa::support

#endif // SISA_SUPPORT_STATS_HPP
