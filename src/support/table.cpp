#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sisa::support {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::formatDouble(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<std::size_t> widths(cols, 0);
    auto account = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    };
    account(header_);
    for (const auto &row : rows_)
        account(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cell;
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace sisa::support
