/**
 * @file
 * Deterministic pseudo-random number generation. Every stochastic
 * component of the library (graph generators, sampling in link
 * prediction, ...) draws from these generators with explicit seeds so
 * simulations are bit-reproducible across runs and machines.
 */

#ifndef SISA_SUPPORT_RNG_HPP
#define SISA_SUPPORT_RNG_HPP

#include <cstdint>

namespace sisa::support {

/** SplitMix64: used to expand a single seed into generator state. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * Xoshiro256**: the library's workhorse generator. Small state, high
 * quality, and trivially seedable from SplitMix64.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &word : state_)
            word = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless method, debiased by rejection.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sisa::support

#endif // SISA_SUPPORT_RNG_HPP
