#include "support/logging.hpp"

#include <cstdio>

namespace sisa::support {

void
logMessage(LogLevel level, const char *where, const std::string &what)
{
    const char *tag = nullptr;
    switch (level) {
      case LogLevel::Inform: tag = "info"; break;
      case LogLevel::Warn:   tag = "warn"; break;
      case LogLevel::Fatal:  tag = "fatal"; break;
      case LogLevel::Panic:  tag = "panic"; break;
    }
    if (level == LogLevel::Inform || level == LogLevel::Warn) {
        std::fprintf(stderr, "[%s] %s\n", tag, what.c_str());
    } else {
        std::fprintf(stderr, "[%s] %s (%s)\n", tag, what.c_str(), where);
    }
}

} // namespace sisa::support
