/**
 * @file
 * Diagnostic helpers in the gem5 tradition: panic() for internal
 * invariant violations (simulator bugs), fatal() for user errors that
 * make continuing impossible, warn()/inform() for status reporting.
 */

#ifndef SISA_SUPPORT_LOGGING_HPP
#define SISA_SUPPORT_LOGGING_HPP

#include <cstdlib>
#include <sstream>
#include <string>

namespace sisa::support {

/** Severity of a diagnostic message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a diagnostic message to stderr.
 *
 * @param level Message severity; Fatal exits, Panic aborts.
 * @param where "file:line" location string.
 * @param what  Message body.
 */
[[gnu::cold]] void logMessage(LogLevel level, const char *where,
                              const std::string &what);

/** Format a sequence of streamable arguments into one string. */
template <typename... Args>
std::string
formatConcat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace sisa::support

#define SISA_STRINGIFY_DETAIL(x) #x
#define SISA_STRINGIFY(x) SISA_STRINGIFY_DETAIL(x)
#define SISA_WHERE __FILE__ ":" SISA_STRINGIFY(__LINE__)

/** Unrecoverable internal error: an invariant of the library is broken. */
#define sisa_panic(...)                                                      \
    do {                                                                     \
        ::sisa::support::logMessage(                                         \
            ::sisa::support::LogLevel::Panic, SISA_WHERE,                    \
            ::sisa::support::formatConcat(__VA_ARGS__));                     \
        ::std::abort();                                                      \
    } while (0)

/** Unrecoverable user error: bad configuration or invalid arguments. */
#define sisa_fatal(...)                                                      \
    do {                                                                     \
        ::sisa::support::logMessage(                                         \
            ::sisa::support::LogLevel::Fatal, SISA_WHERE,                    \
            ::sisa::support::formatConcat(__VA_ARGS__));                     \
        ::std::exit(1);                                                      \
    } while (0)

/** Non-fatal notice that behaviour may be surprising. */
#define sisa_warn(...)                                                       \
    ::sisa::support::logMessage(                                             \
        ::sisa::support::LogLevel::Warn, SISA_WHERE,                         \
        ::sisa::support::formatConcat(__VA_ARGS__))

/** Status message with no connotation of incorrect behaviour. */
#define sisa_inform(...)                                                     \
    ::sisa::support::logMessage(                                             \
        ::sisa::support::LogLevel::Inform, SISA_WHERE,                       \
        ::sisa::support::formatConcat(__VA_ARGS__))

/** Internal invariant check that survives NDEBUG builds. */
#define sisa_assert(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            sisa_panic("assertion failed: " #cond " ", ##__VA_ARGS__);       \
        }                                                                    \
    } while (0)

#endif // SISA_SUPPORT_LOGGING_HPP
