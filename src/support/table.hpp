/**
 * @file
 * Plain-text table emitter used by the benchmark binaries to print the
 * rows/series each paper figure or table reports. Columns are sized to
 * their widest cell; an optional CSV dump makes the output easy to
 * post-process into plots.
 */

#ifndef SISA_SUPPORT_TABLE_HPP
#define SISA_SUPPORT_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace sisa::support {

/** Column-aligned text table with an optional title and CSV export. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append one data row; ragged rows are padded when printed. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with @p precision decimal places. */
    static std::string formatDouble(double value, int precision = 2);

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (header first) to @p os. */
    void printCsv(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sisa::support

#endif // SISA_SUPPORT_TABLE_HPP
