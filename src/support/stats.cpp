#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace sisa::support {

void
Accumulator::add(double sample)
{
    if (count_ == 0) {
        min_ = max_ = sample;
    } else {
        if (sample < min_) min_ = sample;
        if (sample > max_) max_ = sample;
    }
    sum_ += sample;
    ++count_;
}

double
Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
arithmeticMean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : samples)
        sum += s;
    return sum / static_cast<double>(samples.size());
}

double
geometricMean(const std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double s : samples) {
        sisa_assert(s > 0.0, "geometric mean requires positive samples");
        log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(samples.size()));
}

double
speedupOfAverages(const std::vector<double> &baseline,
                  const std::vector<double> &improved)
{
    const double base_mean = arithmeticMean(baseline);
    const double impr_mean = arithmeticMean(improved);
    if (impr_mean == 0.0)
        return 0.0;
    return base_mean / impr_mean;
}

double
averageOfSpeedups(const std::vector<double> &baseline,
                  const std::vector<double> &improved)
{
    sisa_assert(baseline.size() == improved.size(),
                "avg-of-speedups needs paired samples");
    std::vector<double> ratios;
    ratios.reserve(baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        if (improved[i] > 0.0 && baseline[i] > 0.0)
            ratios.push_back(baseline[i] / improved[i]);
    }
    return geometricMean(ratios);
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    p = std::min(std::max(p, std::nextafter(0.0, 1.0)), 100.0);
    const auto n = static_cast<double>(samples.size());
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * n)); // 1-based nearest rank.
    const std::size_t idx = std::max<std::size_t>(rank, 1) - 1;
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(idx),
                     samples.end());
    return samples[idx];
}

double
p50(const std::vector<double> &samples)
{
    return percentile(samples, 50.0);
}

double
p95(const std::vector<double> &samples)
{
    return percentile(samples, 95.0);
}

double
p99(const std::vector<double> &samples)
{
    return percentile(samples, 99.0);
}

double
deadlineHitRatio(const std::vector<double> &completions,
                 const std::vector<double> &deadlines)
{
    sisa_assert(completions.size() == deadlines.size(),
                "deadlineHitRatio needs paired samples");
    if (completions.empty())
        return 1.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < completions.size(); ++i) {
        if (completions[i] <= deadlines[i])
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(completions.size());
}

double
goodput(const std::vector<double> &completions,
        const std::vector<double> &deadlines, double horizon)
{
    sisa_assert(completions.size() == deadlines.size(),
                "goodput needs paired samples");
    std::size_t count = 0;
    for (std::size_t i = 0; i < completions.size(); ++i) {
        if (completions[i] <= deadlines[i] &&
            (horizon == 0.0 || completions[i] <= horizon))
            ++count;
    }
    return static_cast<double>(count);
}

Histogram::Histogram(std::uint64_t bin_width) : binWidth_(bin_width)
{
    sisa_assert(bin_width >= 1, "histogram bin width must be >= 1");
}

void
Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    bins_[value / binWidth_ * binWidth_] += weight;
    total_ += weight;
}

double
Histogram::frequency(std::uint64_t value) const
{
    if (total_ == 0)
        return 0.0;
    auto it = bins_.find(value / binWidth_ * binWidth_);
    if (it == bins_.end())
        return 0.0;
    return static_cast<double>(it->second) / static_cast<double>(total_);
}

} // namespace sisa::support
