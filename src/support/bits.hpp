/**
 * @file
 * Small bit-manipulation and integer-math helpers shared across the
 * set representations and the memory timing models.
 */

#ifndef SISA_SUPPORT_BITS_HPP
#define SISA_SUPPORT_BITS_HPP

#include <bit>
#include <cstdint>

namespace sisa::support {

/** Ceiling division for unsigned integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t num, std::uint64_t den)
{
    return (num + den - 1) / den;
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** floor(log2(x)) for x > 0. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** ceil(log2(x)) for x > 0; log2(1) == 0. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return x <= 1 ? 0 : floorLog2(x - 1) + 1;
}

/** True iff @p x is a power of two (x > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Number of set bits. */
constexpr unsigned
popcount(std::uint64_t x)
{
    return static_cast<unsigned>(std::popcount(x));
}

} // namespace sisa::support

#endif // SISA_SUPPORT_BITS_HPP
