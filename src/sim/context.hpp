/**
 * @file
 * Deterministic cycle-accounting simulation context. This replaces the
 * paper's Sniper+Pin toolchain (see DESIGN.md, Substitution 1): the
 * algorithms execute functionally on the host while charging modeled
 * cycles to logical simulated threads. Per-thread busy and stall
 * cycles support the load-balancing study (Figure 9a), set-size
 * traces support Figure 9b, and per-thread pattern cutoffs implement
 * the paper's technique for taming long simulations of NP-hard
 * mining problems (Section 9.1, "Tackling Long Simulation Runtimes").
 */

#ifndef SISA_SIM_CONTEXT_HPP
#define SISA_SIM_CONTEXT_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/pim.hpp"
#include "support/stats.hpp"

namespace sisa::sim {

using mem::Cycles;

/** Identifier of a simulated (logical) thread. */
using ThreadId = std::uint32_t;

/**
 * Identifier of a serving-layer query (serve/scenario.hpp). Contexts
 * created outside the serving layer carry no_query and pay nothing
 * for the tag: charges only fold into a per-query account once
 * bindQuery() installs a real id.
 */
using QueryId = std::uint32_t;

/** Sentinel: charges are not attributed to any query. */
inline constexpr QueryId no_query = ~QueryId{0};

/** Half-open iteration range assigned to one simulated thread. */
struct Range
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    std::uint64_t size() const { return end - begin; }
    bool empty() const { return begin >= end; }
};

/** Contiguous block partition of [0, total) over @p num_threads. */
Range blockRange(std::uint64_t total, std::uint32_t num_threads,
                 ThreadId tid);

/**
 * Per-query slice of a SimContext: the busy/stall cycles and named
 * counters charged while the context was bound to one QueryId. The
 * serving layer prices each tenant's SLO from these, and the
 * co-tenancy differentials compare them bit for bit solo vs. shared.
 */
struct QueryAccount
{
    Cycles busy = 0;
    Cycles stall = 0;
    std::map<std::string, std::uint64_t> counters;

    Cycles cycles() const { return busy + stall; }
};

/** Cycle and work accounting for one simulated execution. */
class SimContext
{
  public:
    explicit SimContext(std::uint32_t num_threads);

    std::uint32_t numThreads() const { return numThreads_; }

    // --- Per-query scoping (multi-tenant serving) -------------------------

    /**
     * Tag subsequent charges with @p query (no_query detaches). Every
     * chargeBusy/chargeStall/bumpCounter while bound ALSO accumulates
     * into the query's account; thread totals are unchanged, so the
     * invariant "sum of per-query accounts == sum of tagged charges"
     * holds by construction.
     */
    void bindQuery(QueryId query) { activeQuery_ = query; }

    QueryId activeQuery() const { return activeQuery_; }

    /** Account of @p query (zeroes if it never charged here). */
    const QueryAccount &queryAccount(QueryId query) const;

    const std::map<QueryId, QueryAccount> &queryAccounts() const
    {
        return queryAccounts_;
    }

    /**
     * Merge @p other's per-query accounts (cycles AND counters) into
     * this context's accounts. Unlike absorbCounters this moves
     * cycles too -- it is the serving aggregate's view of what each
     * query consumed, not a thread-timeline merge; thread busy/stall
     * vectors are untouched.
     */
    void absorbQueryAccounting(const SimContext &other);

    /** Charge compute (non-stalled) cycles to thread @p tid. */
    void chargeBusy(ThreadId tid, Cycles cycles);

    /** Charge memory-stall cycles to thread @p tid. */
    void chargeStall(ThreadId tid, Cycles cycles);

    /** Total cycles consumed by @p tid (busy + stall). */
    Cycles threadCycles(ThreadId tid) const;

    Cycles threadBusy(ThreadId tid) const { return busy_[tid]; }
    Cycles threadStall(ThreadId tid) const { return stall_[tid]; }

    /** Simulated run time: the slowest thread (barrier semantics). */
    Cycles makespan() const;

    /**
     * Sum of threadCycles over ALL threads -- the serving layer's
     * own-cycle base, monotone no matter which tid a dispatch issues
     * on (a multi-thread session serializes its modeled threads into
     * one served timeline).
     */
    Cycles totalCycles() const;

    /**
     * Fraction of the run during which @p tid was not doing useful
     * work: memory stalls plus end-of-run idling (load imbalance).
     */
    double stalledFraction(ThreadId tid) const;

    // --- Set-size tracing (Figure 9b) -----------------------------------

    /** Start recording processed-set sizes with @p bin_width bins. */
    void enableSetSizeTrace(std::uint64_t bin_width = 5);

    bool setSizeTraceEnabled() const { return traceEnabled_; }

    /** Record that @p tid processed a set of @p size elements. */
    void recordSetSize(ThreadId tid, std::uint64_t size);

    /** Per-thread histogram of processed set sizes. */
    const support::Histogram &setSizeTrace(ThreadId tid) const;

    // --- Pattern cutoffs (Section 9.1) -----------------------------------

    /**
     * Stop each thread after it reports @p per_thread patterns
     * (0 disables the cutoff and simulates the full execution).
     */
    void setPatternCutoff(std::uint64_t per_thread);

    /**
     * Report one found pattern (clique, match, ...) on @p tid.
     * @return true while the thread is within its cutoff.
     */
    bool countPattern(ThreadId tid);

    /** Whether @p tid exhausted its pattern budget. */
    bool cutoffReached(ThreadId tid) const;

    std::uint64_t patterns(ThreadId tid) const { return patterns_[tid]; }
    std::uint64_t totalPatterns() const;

    // --- Named counters ---------------------------------------------------

    /** Accumulate a named statistic (e.g. "sisa.pum_ops"). */
    void bumpCounter(const std::string &name, std::uint64_t delta = 1);

    /**
     * Merge every named counter of @p other into this context -- the
     * barrier step of batched dispatch, where per-worker private
     * contexts fold their tallies into the issuing thread's context.
     * Cycles never merge (the caller charges the makespan instead).
     * Per-query COUNTER slices merge the same way; per-query cycles
     * do NOT (mirroring the thread rule -- the dispatch path charges
     * each query its share of the makespan directly).
     */
    void absorbCounters(const SimContext &other);

    std::uint64_t counter(const std::string &name) const;

    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

  private:
    std::uint32_t numThreads_;
    std::vector<Cycles> busy_;
    std::vector<Cycles> stall_;
    std::vector<std::uint64_t> patterns_;
    std::uint64_t patternCutoff_ = 0;
    bool traceEnabled_ = false;
    std::vector<support::Histogram> traces_;
    std::map<std::string, std::uint64_t> counters_;
    QueryId activeQuery_ = no_query;
    std::map<QueryId, QueryAccount> queryAccounts_;
};

} // namespace sisa::sim

#endif // SISA_SIM_CONTEXT_HPP
