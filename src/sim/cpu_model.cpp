#include "sim/cpu_model.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace sisa::sim {

CpuModel::CpuModel(const CpuParams &params, std::uint32_t num_threads)
    : params_(params),
      sharedL3_(std::make_shared<mem::Cache>(params.hierarchy.l3))
{
    perThread_.reserve(num_threads);
    for (std::uint32_t t = 0; t < num_threads; ++t)
        perThread_.emplace_back(params_.hierarchy, sharedL3_);
}

double
CpuModel::contentionFactor(const SimContext &ctx) const
{
    if (params_.scalableBandwidth)
        return 1.0;
    return 1.0 +
           params_.contentionPerThread *
               static_cast<double>(ctx.numThreads() - 1);
}

void
CpuModel::compute(SimContext &ctx, ThreadId tid, std::uint64_t ops)
{
    const auto cycles = static_cast<mem::Cycles>(
        std::ceil(static_cast<double>(ops) / params_.ipc));
    ctx.chargeBusy(tid, cycles);
}

mem::Cycles
CpuModel::load(SimContext &ctx, ThreadId tid, mem::Addr addr,
               AccessKind kind)
{
    sisa_assert(tid < perThread_.size(), "thread id out of range");
    mem::CacheHierarchy &hier = perThread_[tid];

    const bool was_l1_hit = hier.inL1(addr);
    const mem::Cycles latency = hier.loadLatency(addr);

    const mem::Cycles l1_lat = params_.hierarchy.l1.hitLatency;
    if (was_l1_hit || latency <= l1_lat) {
        ctx.chargeBusy(tid, l1_lat);
        return l1_lat;
    }

    // Beyond-L1 cycles are stalls; streamed misses overlap via MLP,
    // and on a fixed-bandwidth uncore (Figure 1 config) they queue
    // behind the other threads' traffic.
    auto beyond = static_cast<double>(latency - l1_lat);
    beyond *= contentionFactor(ctx);
    if (kind == AccessKind::Sequential)
        beyond /= params_.streamMlp;
    const auto stall = static_cast<mem::Cycles>(std::ceil(beyond));
    ctx.chargeBusy(tid, l1_lat);
    ctx.chargeStall(tid, stall);
    return l1_lat + stall;
}

void
CpuModel::elementWork(SimContext &ctx, ThreadId tid, std::uint64_t count)
{
    ctx.chargeBusy(tid,
                   static_cast<mem::Cycles>(std::ceil(
                       params_.elementCycles *
                       static_cast<double>(count))));
}

void
CpuModel::stream(SimContext &ctx, ThreadId tid, mem::Addr base,
                 std::uint64_t count, std::uint32_t elem_bytes)
{
    if (count == 0)
        return;
    const std::uint32_t line = params_.hierarchy.l1.lineBytes;
    const mem::Addr first_line = base / line;
    const mem::Addr last_line = (base + count * elem_bytes - 1) / line;
    for (mem::Addr l = first_line; l <= last_line; ++l)
        load(ctx, tid, l * line, AccessKind::Sequential);
    elementWork(ctx, tid, count);
}

std::uint64_t
CpuModel::dramAccesses(ThreadId tid) const
{
    return perThread_[tid].dramAccesses();
}

} // namespace sisa::sim
