/**
 * @file
 * Analytic out-of-order CPU core model (the Section 9.1 non-SISA
 * platform: 128-entry instruction window, branch predictor, private
 * L1/L2, shared 8MB L3, TLBs). Memory accesses run through the cache
 * hierarchy of src/mem; the core model layers on top of it:
 *
 *  - memory-level parallelism: the OoO window overlaps independent
 *    (streaming) misses, dividing their latency by `streamMlp`;
 *    dependent accesses (pointer chases, binary-search probes) cannot
 *    be overlapped and pay full latency;
 *  - bandwidth contention: in the fixed-bandwidth configuration used
 *    for the Figure 1 motivation study, DRAM latency grows with the
 *    number of active threads (queueing); the PIM-parametrized
 *    baselines of Figure 6 instead use `scalableBandwidth = true`,
 *    matching the paper's "for fair comparison, we increase the
 *    memory bandwidth with the number of cores".
 *
 * Cycles beyond the L1 hit latency are charged as stall cycles; L1
 * hits and arithmetic are charged as busy cycles.
 */

#ifndef SISA_SIM_CPU_MODEL_HPP
#define SISA_SIM_CPU_MODEL_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hpp"
#include "sim/context.hpp"

namespace sisa::sim {

/** Core-model knobs. */
struct CpuParams
{
    mem::HierarchyConfig hierarchy{};
    /** Sustained instructions/cycle for simple ALU work. */
    double ipc = 2.0;
    /** Overlap factor for independent (streamed) misses. */
    double streamMlp = 4.0;
    /**
     * Amortized cycles of per-element software work in data-dependent
     * set loops (compare + advance + a hard-to-predict branch):
     * ~4 instructions at the core IPC plus ~0.25 mispredictions of
     * ~14 cycles. Charged via elementWork(); the PIM engines do this
     * work inside the memory units instead.
     */
    double elementCycles = 5.0;
    /**
     * When false, every beyond-L1 latency (shared L3, memory bus,
     * DRAM) is scaled by (1 + contentionPerThread * (T - 1)) to model
     * the fixed shared uncore of a conventional CPU (the Figure 1
     * configuration). The PIM-parametrized baselines of Figure 6 use
     * true: bandwidth scales with the core count.
     */
    bool scalableBandwidth = true;
    double contentionPerThread = 0.18;
};

/** Kind of memory access, deciding the MLP overlap applied. */
enum class AccessKind
{
    Sequential, ///< Part of a stream; misses overlap (streamMlp).
    Dependent,  ///< Serialized on prior loads; full latency.
};

/**
 * One cache hierarchy per simulated thread plus shared L3; charges
 * cycles into a SimContext.
 */
class CpuModel
{
  public:
    CpuModel(const CpuParams &params, std::uint32_t num_threads);

    const CpuParams &params() const { return params_; }

    /** Charge @p ops simple ALU operations to @p tid. */
    void compute(SimContext &ctx, ThreadId tid, std::uint64_t ops);

    /**
     * Charge the software cost of processing @p count elements in a
     * data-dependent loop (merge steps, filter tests, probe checks).
     */
    void elementWork(SimContext &ctx, ThreadId tid,
                     std::uint64_t count);

    /** One load of @p addr; returns the modeled latency. */
    mem::Cycles load(SimContext &ctx, ThreadId tid, mem::Addr addr,
                     AccessKind kind);

    /**
     * Stream @p count elements of @p elem_bytes from @p base: touches
     * each cache line once with Sequential overlap and charges one ALU
     * op per element.
     */
    void stream(SimContext &ctx, ThreadId tid, mem::Addr base,
                std::uint64_t count, std::uint32_t elem_bytes);

    /** Store modeled identically to a load (write-allocate). */
    mem::Cycles
    store(SimContext &ctx, ThreadId tid, mem::Addr addr, AccessKind kind)
    {
        return load(ctx, tid, addr, kind);
    }

    /** DRAM accesses observed by @p tid's hierarchy. */
    std::uint64_t dramAccesses(ThreadId tid) const;

  private:
    double contentionFactor(const SimContext &ctx) const;

    CpuParams params_;
    std::shared_ptr<mem::Cache> sharedL3_;
    std::vector<mem::CacheHierarchy> perThread_;
};

} // namespace sisa::sim

#endif // SISA_SIM_CPU_MODEL_HPP
