#include "sim/context.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace sisa::sim {

Range
blockRange(std::uint64_t total, std::uint32_t num_threads, ThreadId tid)
{
    sisa_assert(num_threads > 0 && tid < num_threads, "bad partition");
    const std::uint64_t chunk = total / num_threads;
    const std::uint64_t extra = total % num_threads;
    const std::uint64_t begin =
        tid * chunk + std::min<std::uint64_t>(tid, extra);
    const std::uint64_t size = chunk + (tid < extra ? 1 : 0);
    return {begin, begin + size};
}

SimContext::SimContext(std::uint32_t num_threads)
    : numThreads_(num_threads), busy_(num_threads, 0),
      stall_(num_threads, 0), patterns_(num_threads, 0)
{
    sisa_assert(num_threads >= 1, "need at least one simulated thread");
}

void
SimContext::chargeBusy(ThreadId tid, Cycles cycles)
{
    busy_[tid] += cycles;
    if (activeQuery_ != no_query)
        queryAccounts_[activeQuery_].busy += cycles;
}

void
SimContext::chargeStall(ThreadId tid, Cycles cycles)
{
    stall_[tid] += cycles;
    if (activeQuery_ != no_query)
        queryAccounts_[activeQuery_].stall += cycles;
}

const QueryAccount &
SimContext::queryAccount(QueryId query) const
{
    static const QueryAccount empty{};
    auto it = queryAccounts_.find(query);
    return it == queryAccounts_.end() ? empty : it->second;
}

void
SimContext::absorbQueryAccounting(const SimContext &other)
{
    for (const auto &[query, account] : other.queryAccounts_) {
        QueryAccount &mine = queryAccounts_[query];
        mine.busy += account.busy;
        mine.stall += account.stall;
        for (const auto &[name, value] : account.counters)
            mine.counters[name] += value;
    }
}

Cycles
SimContext::threadCycles(ThreadId tid) const
{
    return busy_[tid] + stall_[tid];
}

Cycles
SimContext::makespan() const
{
    Cycles max_cycles = 0;
    for (ThreadId t = 0; t < numThreads_; ++t)
        max_cycles = std::max(max_cycles, threadCycles(t));
    return max_cycles;
}

Cycles
SimContext::totalCycles() const
{
    Cycles total = 0;
    for (ThreadId t = 0; t < numThreads_; ++t)
        total += threadCycles(t);
    return total;
}

double
SimContext::stalledFraction(ThreadId tid) const
{
    const Cycles span = makespan();
    if (span == 0)
        return 0.0;
    const Cycles idle = span - threadCycles(tid);
    return static_cast<double>(stall_[tid] + idle) /
           static_cast<double>(span);
}

void
SimContext::enableSetSizeTrace(std::uint64_t bin_width)
{
    traceEnabled_ = true;
    traces_.clear();
    traces_.reserve(numThreads_);
    for (ThreadId t = 0; t < numThreads_; ++t)
        traces_.emplace_back(bin_width);
}

void
SimContext::recordSetSize(ThreadId tid, std::uint64_t size)
{
    if (traceEnabled_)
        traces_[tid].add(size);
}

const support::Histogram &
SimContext::setSizeTrace(ThreadId tid) const
{
    sisa_assert(traceEnabled_, "set-size tracing is not enabled");
    return traces_[tid];
}

void
SimContext::setPatternCutoff(std::uint64_t per_thread)
{
    patternCutoff_ = per_thread;
}

bool
SimContext::countPattern(ThreadId tid)
{
    ++patterns_[tid];
    return patternCutoff_ == 0 || patterns_[tid] < patternCutoff_;
}

bool
SimContext::cutoffReached(ThreadId tid) const
{
    return patternCutoff_ != 0 && patterns_[tid] >= patternCutoff_;
}

std::uint64_t
SimContext::totalPatterns() const
{
    std::uint64_t total = 0;
    for (std::uint64_t p : patterns_)
        total += p;
    return total;
}

void
SimContext::bumpCounter(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
    if (activeQuery_ != no_query)
        queryAccounts_[activeQuery_].counters[name] += delta;
}

void
SimContext::absorbCounters(const SimContext &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
    for (const auto &[query, account] : other.queryAccounts_) {
        QueryAccount &mine = queryAccounts_[query];
        for (const auto &[name, value] : account.counters)
            mine.counters[name] += value;
    }
}

std::uint64_t
SimContext::counter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

} // namespace sisa::sim
