#include "mem/address_space.hpp"

#include "support/bits.hpp"

namespace sisa::mem {

Region
AddressSpace::allocate(const std::string &name, std::uint64_t bytes)
{
    Region region;
    region.name = name;
    region.base = next_;
    region.bytes = bytes;
    next_ += support::alignUp(bytes == 0 ? 1 : bytes, page_);
    regions_.push_back(region);
    return region;
}

} // namespace sisa::mem
