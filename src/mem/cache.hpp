/**
 * @file
 * Set-associative cache hierarchy with LRU replacement, plus a TLB,
 * modeling the out-of-order CPU platform the paper evaluates non-SISA
 * code on (Section 9.1: 32KB L1I/D, 256KB L2, shared 8MB L3, 64-entry
 * D-TLB, 512-entry S-TLB). The hierarchy is driven by synthetic
 * addresses (see address_space.hpp) and returns access latencies in
 * cycles; the CPU core model (src/sim) layers MLP overlap and
 * bandwidth contention on top.
 */

#ifndef SISA_MEM_CACHE_HPP
#define SISA_MEM_CACHE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/address_space.hpp"
#include "mem/pim.hpp"

namespace sisa::mem {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t associativity = 8;
    std::uint32_t lineBytes = 64;
    Cycles hitLatency = 4;
};

/** One set-associative LRU cache (or TLB when lineBytes = pageBytes). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /** Look up @p addr; inserts on miss. @return true on hit. */
    bool access(Addr addr);

    /** Probe without modifying state. */
    bool contains(Addr addr) const;

    /** Drop all contents. */
    void flush();

    const CacheConfig &config() const { return config_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint64_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    CacheConfig config_;
    std::uint32_t numSets_;
    std::vector<Line> lines_; ///< numSets_ x associativity, row-major.
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Configuration of the full per-core hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1{32 * 1024, 8, 64, 4};
    CacheConfig l2{256 * 1024, 8, 64, 12};
    CacheConfig l3{8 * 1024 * 1024, 16, 64, 38}; ///< Shared across cores.
    CacheConfig dtlb{64 * 4096, 4, 4096, 0};     ///< 64 x 4KB pages.
    Cycles tlbMissPenalty = 30;
    Cycles dramLatency = 100; ///< l_M.
};

/**
 * Private L1 + L2 per core with a shared L3 and a private D-TLB.
 * access() returns the latency of one load in cycles.
 */
class CacheHierarchy
{
  public:
    /**
     * @param config Geometry; the L3 is shared via @p shared_l3 when
     *               non-null (all cores must pass the same object).
     */
    CacheHierarchy(const HierarchyConfig &config,
                   std::shared_ptr<Cache> shared_l3 = nullptr);

    /** Latency of a single load of @p addr (line granularity). */
    Cycles loadLatency(Addr addr);

    /** True iff the line holding @p addr hits in L1 (no state change). */
    bool inL1(Addr addr) const { return l1_.contains(addr); }

    std::uint64_t dramAccesses() const { return dramAccesses_; }

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    Cache &l3() { return *l3_; }

  private:
    HierarchyConfig config_;
    Cache l1_;
    Cache l2_;
    std::shared_ptr<Cache> l3_;
    Cache dtlb_;
    std::uint64_t dramAccesses_ = 0;
};

} // namespace sisa::mem

#endif // SISA_MEM_CACHE_HPP
