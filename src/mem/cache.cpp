#include "mem/cache.hpp"

#include "support/bits.hpp"
#include "support/logging.hpp"

namespace sisa::mem {

Cache::Cache(const CacheConfig &config) : config_(config)
{
    sisa_assert(support::isPowerOfTwo(config.lineBytes),
                "cache line size must be a power of two");
    const std::uint64_t lines = config.sizeBytes / config.lineBytes;
    sisa_assert(lines % config.associativity == 0,
                "cache size / line size must be divisible by assoc");
    numSets_ = static_cast<std::uint32_t>(lines / config.associativity);
    sisa_assert(numSets_ >= 1, "cache must have at least one set");
    lines_.resize(lines);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / config_.lineBytes) % numSets_;
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return addr / config_.lineBytes / numSets_;
}

bool
Cache::access(Addr addr)
{
    ++tick_;
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[set * config_.associativity];

    Line *victim = base;
    for (std::uint32_t way = 0; way < config_.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lastUse = tick_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    ++misses_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const std::uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * config_.associativity];
    for (std::uint32_t way = 0; way < config_.associativity; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config,
                               std::shared_ptr<Cache> shared_l3)
    : config_(config), l1_(config.l1), l2_(config.l2),
      l3_(shared_l3 ? std::move(shared_l3)
                    : std::make_shared<Cache>(config.l3)),
      dtlb_(config.dtlb)
{
}

Cycles
CacheHierarchy::loadLatency(Addr addr)
{
    Cycles latency = dtlb_.access(addr) ? 0 : config_.tlbMissPenalty;
    latency += config_.l1.hitLatency;
    if (l1_.access(addr))
        return latency;
    latency += config_.l2.hitLatency;
    if (l2_.access(addr))
        return latency;
    latency += config_.l3.hitLatency;
    if (l3_->access(addr))
        return latency;
    ++dramAccesses_;
    return latency + config_.dramLatency;
}

} // namespace sisa::mem
