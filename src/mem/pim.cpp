#include "mem/pim.hpp"

#include <algorithm>
#include <cmath>

#include "support/bits.hpp"

namespace sisa::mem {

Cycles
pumBulkCycles(const PimParams &params, std::uint64_t n_bits)
{
    const std::uint64_t bits_per_step =
        params.rowBits * params.parallelRows;
    const std::uint64_t steps =
        std::max<std::uint64_t>(1, support::ceilDiv(n_bits, bits_per_step));
    return params.dramLatency + params.inSituLatency * steps;
}

Cycles
pnmStreamCycles(const PimParams &params, std::uint64_t max_elems,
                std::uint32_t elem_bytes)
{
    return pnmStreamBytesCycles(params, max_elems * elem_bytes);
}

Cycles
pnmStreamBytesCycles(const PimParams &params, std::uint64_t bytes)
{
    const double bandwidth = std::min(params.memBandwidth,
                                      params.interconnectBandwidth);
    return params.dramLatency +
           static_cast<Cycles>(
               std::ceil(static_cast<double>(bytes) / bandwidth));
}

Cycles
pnmRandomCycles(const PimParams &params, std::uint64_t probes)
{
    return params.dramLatency * probes;
}

Cycles
pnmIndependentRandomCycles(const PimParams &params, std::uint64_t probes)
{
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(params.dramLatency * probes) /
                  params.pnmRandomMlp));
}

Cycles
interconnectCycles(const PimParams &params, std::uint64_t bytes)
{
    return params.dramLatency +
           static_cast<Cycles>(
               std::ceil(static_cast<double>(bytes) /
                         params.interconnectBandwidth));
}

std::uint64_t
predictedGallopProbes(std::uint64_t min_size, std::uint64_t max_size)
{
    if (min_size == 0 || max_size == 0)
        return 0;
    return min_size * (support::ceilLog2(max_size) + 1);
}

} // namespace sisa::mem
