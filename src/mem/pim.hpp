/**
 * @file
 * Processing-in-memory timing models (Sections 8.1, 8.3, 9.1).
 *
 * SISA-PUM is modeled after Ambit: bulk bitwise AND/OR/NOT computed
 * in-situ over DRAM rows (via RowClone copies to the designated
 * compute rows), with run time l_M + l_I * ceil(n / (q * R)) -- the
 * formula the paper's simulation uses, where q rows per bank process
 * in parallel and R is the row size in bits.
 *
 * SISA-PNM is modeled after Tesseract-style logic-layer cores in 3D
 * DRAM: streaming work is bounded by min(b_M, b_L) bandwidth and
 * random accesses pay the DRAM latency l_M each (Section 8.3's
 * performance models, reproduced verbatim).
 */

#ifndef SISA_MEM_PIM_HPP
#define SISA_MEM_PIM_HPP

#include <cstdint>

namespace sisa::mem {

/** Cycle count type: all timing is in CPU-clock cycles. */
using Cycles = std::uint64_t;

/**
 * Parameters of the PIM platform (Table 2 symbols; defaults follow
 * Section 9.1: Tesseract-style PNM, Ambit-style PUM, 8KB rows).
 */
struct PimParams
{
    /** R: DRAM row size in bits (8 KB rows, Section 9.1). */
    std::uint64_t rowBits = 8ull * 1024 * 8;
    /** q: rows processable in parallel (subarray-level parallelism). */
    std::uint32_t parallelRows = 64;
    /**
     * l_M: DRAM access latency in cycles *as seen by the PIM units*.
     * Logic-layer cores reach their local vault through TSVs without
     * the off-chip SerDes hop a host access pays, so the in-stack
     * latency is well below the host's ~100 cycles (Tesseract/HMC
     * characterizations put it near half).
     */
    Cycles dramLatency = 60;
    /** l_I: latency of one in-situ bulk bitwise step in cycles. */
    Cycles inSituLatency = 250;
    /** b_M: per-vault DRAM bandwidth in bytes/cycle (16 GB/s @2GHz). */
    double memBandwidth = 8.0;
    /**
     * b_L: inter-core/vault interconnect bandwidth in bytes/cycle.
     * Bounds streaming together with b_M, and prices cross-vault
     * operand transfers and result reduction on its own
     * (interconnectCycles).
     */
    double interconnectBandwidth = 8.0;
    /** Total vault count (16 cubes x 32 vaults, Section 9.1). */
    std::uint32_t vaults = 512;
    /**
     * Overlap factor for *independent* random accesses on a PNM core
     * (bit probes of a bitvector): simple list prefetching hides part
     * of l_M, Tesseract-style. Dependent accesses (binary-search
     * probes) cannot overlap and always pay the full latency.
     */
    double pnmRandomMlp = 4.0;
    /** Fixed SCU decode/dispatch delay per SISA instruction. */
    Cycles scuDelay = 4;
    /** Latency of an SMB (SCU metadata cache) hit. */
    Cycles smbHitLatency = 1;
};

/**
 * SISA-PUM: cycles for one bulk bitwise operation over @p n_bits wide
 * bitvectors: l_M + l_I * ceil(n / (q * R)).
 */
Cycles pumBulkCycles(const PimParams &params, std::uint64_t n_bits);

/**
 * SISA-PNM streaming model (Section 8.3): l_M + W * max(|A|, |B|) /
 * min(b_M, b_L). @p max_elems is max(|A|, |B|); @p elem_bytes is the
 * word size W in bytes.
 */
Cycles pnmStreamCycles(const PimParams &params, std::uint64_t max_elems,
                       std::uint32_t elem_bytes);

/**
 * Byte-granular form of the Section 8.3 streaming model:
 * l_M + bytes / min(b_M, b_L). Streams of mixed word sizes (4-byte
 * sparse-array elements vs 8-byte bitvector words) must be priced
 * through this so their costs are comparable in bytes, not in
 * incommensurate element counts.
 */
Cycles pnmStreamBytesCycles(const PimParams &params, std::uint64_t bytes);

/**
 * SISA-PNM random-access model (Section 8.3): count the performed
 * random accesses and multiply by the memory access latency.
 */
Cycles pnmRandomCycles(const PimParams &params, std::uint64_t probes);

/**
 * Random accesses that are *independent* of one another (e.g. bit
 * probes for each element of a sparse array): the PNM core overlaps
 * them by pnmRandomMlp.
 */
Cycles pnmIndependentRandomCycles(const PimParams &params,
                                  std::uint64_t probes);

/**
 * Inter-vault transfer: moving @p bytes from one vault to another
 * over the cube interconnect costs l_M + ceil(bytes / b_L). This is
 * the b_L term in isolation -- unlike pnmStreamBytesCycles it is NOT
 * bounded by the local vault bandwidth b_M, because the sender
 * streams straight onto the links. Charged by Scu::dispatchBatch for
 * remote co-operands and for the cross-vault result reduction tree.
 */
Cycles interconnectCycles(const PimParams &params, std::uint64_t bytes);

/**
 * Predicted galloping probe count, min * ceil(log2(max)), used by the
 * SCU to choose between merge and galloping *before* executing.
 */
std::uint64_t predictedGallopProbes(std::uint64_t min_size,
                                    std::uint64_t max_size);

} // namespace sisa::mem

#endif // SISA_MEM_PIM_HPP
