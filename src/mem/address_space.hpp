/**
 * @file
 * Synthetic address space for the memory-trace models. The cache
 * hierarchy is driven with synthetic virtual addresses rather than
 * host pointers so simulations are bit-reproducible across runs
 * (host ASLR would otherwise change cache-set mappings). Each logical
 * array (CSR offsets, adjacency, auxiliary buffers, ...) is allocated
 * a page-aligned region.
 */

#ifndef SISA_MEM_ADDRESS_SPACE_HPP
#define SISA_MEM_ADDRESS_SPACE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace sisa::mem {

/** Synthetic virtual address. */
using Addr = std::uint64_t;

/** A named, page-aligned synthetic allocation. */
struct Region
{
    std::string name;
    Addr base = 0;
    std::uint64_t bytes = 0;

    /** Address of element @p index with @p elem_bytes-wide elements. */
    Addr
    elem(std::uint64_t index, std::uint32_t elem_bytes) const
    {
        return base + index * elem_bytes;
    }
};

/** Bump allocator over a synthetic virtual address space. */
class AddressSpace
{
  public:
    AddressSpace() = default;

    /** Allocate @p bytes (page aligned) under @p name. */
    Region allocate(const std::string &name, std::uint64_t bytes);

    /** Total bytes allocated so far. */
    std::uint64_t allocated() const { return next_ - base_; }

  private:
    static constexpr Addr base_ = 0x10000000ULL;
    static constexpr std::uint64_t page_ = 4096;
    Addr next_ = base_;
    std::vector<Region> regions_;
};

} // namespace sisa::mem

#endif // SISA_MEM_ADDRESS_SPACE_HPP
