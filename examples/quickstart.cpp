/**
 * @file
 * Quickstart: the SISA public API in one page.
 *
 * Builds a small graph, materializes its neighborhoods as SISA sets
 * (large ones as dense bitvectors, small ones as sparse arrays), runs
 * a few set-centric queries through the simulated SISA hardware, and
 * prints what the hardware did.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "algorithms/triangle_count.hpp"
#include "core/sisa_engine.hpp"
#include "core/vertex_set.hpp"
#include "graph/generators.hpp"

using namespace sisa;

int
main()
{
    // 1. A power-law graph with a few hubs (bio-network style).
    graph::ChungLuParams params;
    params.n = 1000;
    params.m = 15000;
    params.exponent = 1.9;
    params.hubs = 8;
    params.hubDegreeFraction = 0.35;
    const graph::Graph g = graph::chungLu(params, /*seed=*/1);
    std::printf("graph: %s\n", g.describe().c_str());

    // 2. A SISA engine: the SCU + PUM/PNM hardware model.
    core::SisaEngine engine(g.numVertices(), isa::ScuConfig{},
                            /*num_threads=*/8);
    sim::SimContext ctx(8);

    // 3. Neighborhoods as SISA sets (t = 0.4, 10% storage budget).
    algorithms::OrientedSetGraph osg(g, engine);
    std::printf("dense neighborhoods: %u (budget-limited)\n",
                osg.sets->assignment().denseCount);

    // 4. Set algebra through the VertexSet abstraction, on the
    //    undirected neighborhoods of the two biggest hubs.
    core::SetGraph undirected(g, engine);
    graph::VertexId hub1 = 0, hub2 = 1;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        if (g.degree(v) > g.degree(hub1)) {
            hub2 = hub1;
            hub1 = v;
        } else if (v != hub1 && g.degree(v) > g.degree(hub2)) {
            hub2 = v;
        }
    }
    auto na = core::VertexSet::borrow(engine, ctx, 0,
                                      undirected.neighborhood(hub1));
    auto nb = core::VertexSet::borrow(engine, ctx, 0,
                                      undirected.neighborhood(hub2));
    std::printf("|N(%u)| = %llu, |N(%u)| = %llu, common neighbors = "
                "%llu\n",
                hub1, static_cast<unsigned long long>(na.size()),
                hub2, static_cast<unsigned long long>(nb.size()),
                static_cast<unsigned long long>(
                    na.intersectCount(nb)));

    // 5. A full set-centric algorithm: triangle counting.
    const std::uint64_t triangles =
        algorithms::triangleCount(osg, ctx);
    std::printf("triangles: %llu\n",
                static_cast<unsigned long long>(triangles));

    // 6. What the hardware did.
    std::printf("simulated cycles (makespan): %llu\n",
                static_cast<unsigned long long>(ctx.makespan()));
    std::printf("  PUM bulk-bitwise ops: %llu\n",
                static_cast<unsigned long long>(
                    ctx.counter("scu.pum_ops")));
    std::printf("  PNM streaming ops:    %llu\n",
                static_cast<unsigned long long>(
                    ctx.counter("scu.pnm_stream_ops")));
    std::printf("  PNM random ops:       %llu\n",
                static_cast<unsigned long long>(
                    ctx.counter("scu.pnm_random_ops")));
    std::printf("  SMB hits/misses:      %llu/%llu\n",
                static_cast<unsigned long long>(
                    ctx.counter("scu.smb_hits")),
                static_cast<unsigned long long>(
                    ctx.counter("scu.smb_misses")));
    return 0;
}
