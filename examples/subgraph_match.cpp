/**
 * @file
 * Labeled subgraph isomorphism (Algorithm 7 / VF2) -- a motif-search
 * scenario: find star motifs in an interaction network whose vertices
 * carry one of three labels (the evaluation's si-4s / si-4s-L
 * workloads). Labels add constraints that prune the recursion, so the
 * labeled search is usually *faster* despite extra label checks --
 * the same effect Section 9.2 reports.
 *
 *   ./subgraph_match [dataset-name]   (default: int-antCol5-d1)
 */

#include <cstdio>
#include <string>

#include "algorithms/subgraph_iso.hpp"
#include "core/sisa_engine.hpp"
#include "graph/dataset_registry.hpp"
#include "graph/generators.hpp"

using namespace sisa;

namespace {

struct RunResult
{
    std::uint64_t matches;
    std::uint64_t cycles;
};

RunResult
run(const graph::Graph &g, const graph::Graph &pattern)
{
    core::SisaEngine engine(g.numVertices(), isa::ScuConfig{}, 8);
    sim::SimContext ctx(8);
    // Full executions: the label claim is about total work, and
    // labels prune the recursion early (Section 9.2, "Labels").
    core::SetGraph sg(g, engine);
    const auto result =
        algorithms::subgraphIsomorphism(sg, ctx, pattern);
    return {result.matches, ctx.makespan()};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "intD-antCol4";
    graph::Graph g = graph::makeDataset(name);
    // Each vertex receives one of 3 random labels (Section 9.1).
    g.setVertexLabels(
        graph::randomVertexLabels(g.numVertices(), 3, 7));
    std::printf("dataset %s: %s\n", name.c_str(),
                g.describe().c_str());

    const graph::Graph star = algorithms::starPattern(3);
    const graph::Graph labeled_star =
        algorithms::labeledStarPattern(3, 3);

    const RunResult unlabeled = run(g, star);
    const RunResult labeled = run(g, labeled_star);

    std::printf("\n%-12s %12s %14s\n", "pattern", "matches", "cycles");
    std::printf("%-12s %12llu %14llu\n", "4-star",
                static_cast<unsigned long long>(unlabeled.matches),
                static_cast<unsigned long long>(unlabeled.cycles));
    std::printf("%-12s %12llu %14llu\n", "4-star-L",
                static_cast<unsigned long long>(labeled.matches),
                static_cast<unsigned long long>(labeled.cycles));
    if (labeled.cycles < unlabeled.cycles) {
        std::printf("\nlabels pruned the search: %.2fx faster\n",
                    static_cast<double>(unlabeled.cycles) /
                        static_cast<double>(labeled.cycles));
    }
    return 0;
}
