/**
 * @file
 * Link prediction on a social-interaction network (Algorithm 10):
 * remove a random 10% of edges, score candidate pairs with several
 * vertex-similarity measures (Algorithm 9), and report how many of
 * the removed links each measure recovers. All similarity kernels run
 * as SISA set operations.
 *
 *   ./link_prediction [dataset-name]   (default: soc-fbMsg analogue)
 */

#include <cstdio>
#include <string>

#include "algorithms/link_prediction.hpp"
#include "core/sisa_engine.hpp"
#include "graph/dataset_registry.hpp"

using namespace sisa;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "soc-fbMsg";
    const graph::Graph g = graph::makeDataset(name);
    std::printf("dataset %s: %s\n", name.c_str(),
                g.describe().c_str());
    std::printf("removing 10%% of edges, predicting them back\n\n");
    std::printf("%-22s %10s %10s %8s %14s\n", "measure", "removed",
                "correct", "eff", "cycles");

    using algorithms::SimilarityMeasure;
    const SimilarityMeasure measures[] = {
        SimilarityMeasure::CommonNeighbors,
        SimilarityMeasure::Jaccard,
        SimilarityMeasure::Overlap,
        SimilarityMeasure::AdamicAdar,
        SimilarityMeasure::ResourceAllocation,
        SimilarityMeasure::PreferentialAttachment,
    };

    for (const SimilarityMeasure measure : measures) {
        core::SisaEngine engine(g.numVertices(), isa::ScuConfig{}, 8);
        sim::SimContext ctx(8);
        const auto result = algorithms::linkPredictionTest(
            engine, g, ctx, measure, /*remove_ratio=*/0.1,
            /*seed=*/2026);
        std::printf("%-22s %10llu %10llu %7.1f%% %14llu\n",
                    algorithms::measureName(measure),
                    static_cast<unsigned long long>(
                        result.removedEdges),
                    static_cast<unsigned long long>(result.correct),
                    100.0 * result.effectiveness(),
                    static_cast<unsigned long long>(ctx.makespan()));
    }
    return 0;
}
