/**
 * @file
 * Maximal clique listing on a protein-interaction-style network --
 * the paper's flagship workload (>10x speedup over hand-tuned
 * Bron-Kerbosch). Runs the same problem in the three evaluation
 * modes and prints the Figure 6-style comparison:
 *
 *   non-set    hand-tuned BK on the OoO CPU model
 *   set-based  set-centric BK executed in software
 *   sisa       set-centric BK offloaded to PIM
 *
 *   ./maximal_cliques [dataset-name]   (default: bio-SC-GT analogue)
 */

#include <cstdio>
#include <string>

#include "algorithms/bron_kerbosch.hpp"
#include "baselines/bk_baseline.hpp"
#include "baselines/csr_view.hpp"
#include "core/cpu_set_engine.hpp"
#include "core/sisa_engine.hpp"
#include "graph/dataset_registry.hpp"

using namespace sisa;

namespace {

constexpr std::uint32_t threads = 8;
constexpr std::uint64_t cutoff = 300; // Patterns per thread.

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bio-SC-GT";
    const graph::Graph g = graph::makeDataset(name);
    std::printf("dataset %s: %s\n", name.c_str(),
                g.describe().c_str());

    // --- non-set: hand-tuned Bron-Kerbosch --------------------------------
    sim::CpuModel cpu(sim::CpuParams{}, threads);
    sim::SimContext ctx_base(threads);
    ctx_base.setPatternCutoff(cutoff);
    baselines::CsrView view(g, cpu);
    const auto base = baselines::maximalCliquesBaseline(view, ctx_base);

    // --- set-based: the Algorithm 2 formulation in software ---------------
    core::CpuSetEngine cpu_eng(g.numVertices(), sim::CpuParams{},
                               threads);
    sim::SimContext ctx_set(threads);
    ctx_set.setPatternCutoff(cutoff);
    core::SetGraph sg_cpu(g, cpu_eng);
    const auto set_based = algorithms::maximalCliques(sg_cpu, ctx_set);

    // --- sisa: the same formulation offloaded to PIM -----------------------
    core::SisaEngine sisa_eng(g.numVertices(), isa::ScuConfig{},
                              threads);
    sim::SimContext ctx_sisa(threads);
    ctx_sisa.setPatternCutoff(cutoff);
    core::SetGraph sg_sisa(g, sisa_eng);
    const auto sisa = algorithms::maximalCliques(sg_sisa, ctx_sisa);

    std::printf("\n%-10s %14s %10s %10s\n", "mode", "cycles",
                "cliques", "max-size");
    std::printf("%-10s %14llu %10llu %10llu\n", "non-set",
                static_cast<unsigned long long>(ctx_base.makespan()),
                static_cast<unsigned long long>(base.cliqueCount),
                static_cast<unsigned long long>(base.maxCliqueSize));
    std::printf("%-10s %14llu %10llu %10llu\n", "set-based",
                static_cast<unsigned long long>(ctx_set.makespan()),
                static_cast<unsigned long long>(set_based.cliqueCount),
                static_cast<unsigned long long>(
                    set_based.maxCliqueSize));
    std::printf("%-10s %14llu %10llu %10llu\n", "sisa",
                static_cast<unsigned long long>(ctx_sisa.makespan()),
                static_cast<unsigned long long>(sisa.cliqueCount),
                static_cast<unsigned long long>(sisa.maxCliqueSize));

    const double speedup_nonset =
        static_cast<double>(ctx_base.makespan()) /
        static_cast<double>(ctx_sisa.makespan());
    const double speedup_set =
        static_cast<double>(ctx_set.makespan()) /
        static_cast<double>(ctx_sisa.makespan());
    std::printf("\nsisa speedup: %.2fx over non-set, %.2fx over "
                "set-based\n",
                speedup_nonset, speedup_set);
    return 0;
}
